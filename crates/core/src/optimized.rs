//! The optimized collusion detection method (§IV.C).
//!
//! Instead of scanning the whole matrix row to compute the community
//! fraction `b`, the manager uses the closed-form Formula (2) band
//! ([`crate::formula`]): `n_i`'s reputation is *consistent with* collusion
//! by rater `n_j` iff
//!
//! ```text
//! 2·T_a·N(j,i) − N_i  ≤  R_i  <  2·T_b·(N_i − N(j,i)) + 2·N(j,i) − N_i
//! ```
//!
//! which needs only the per-pair counter `N(j,i)`, the total `N_i` and the
//! signed reputation `R_i` — all O(1) per pair, giving `O(m·n)` overall
//! (Proposition 4.2).
//!
//! The band test is a *necessary* condition for the basic detector's
//! fraction test (proved exhaustively in `formula::tests`), so Optimized
//! never misses a pair Basic finds; on rating profiles where several `(a,b)`
//! splits share one reputation value it can flag slightly more. On the
//! paper's workloads the two coincide ("Unoptimized and Optimized generate
//! the same results in collusion detection").

use crate::cost::CostMeter;
use crate::formula::{formula_band, formula_reputation};
use crate::input::{DetectionInput, SnapshotInput};
use crate::model::{DirectionEvidence, SuspectPair};
use crate::pairset::PairSet;
use crate::policy::DetectionPolicy;
use crate::report::DetectionReport;
use collusion_reputation::history::NodeTotals;
use collusion_reputation::id::NodeId;
use collusion_reputation::sharded::TotalsColumns;
use collusion_reputation::thresholds::Thresholds;
use collusion_reputation::view::SnapshotView;
use rayon::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::OnceLock;

/// Counters from a band-pruned detection pass
/// ([`OptimizedDetector::detect_pruned`]), proving how much work the
/// Formula (2) pre-filter skipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// High-reputed rows whose reputation provably falls outside every
    /// Formula (2) band their raters could produce.
    pub rows_pruned: u64,
    /// Candidate pairs skipped without probing any row data.
    pub pairs_pruned: u64,
    /// Candidate pairs that went through the full direction checks.
    pub pairs_examined: u64,
}

impl PruneStats {
    /// Fraction of candidate pairs skipped, 0.0 when nothing was seen.
    pub fn skip_rate(&self) -> f64 {
        let total = self.pairs_pruned + self.pairs_examined;
        if total == 0 {
            0.0
        } else {
            self.pairs_pruned as f64 / total as f64
        }
    }
}

/// Per-ratee aggregates over its *frequent* raters (count, signed sum),
/// computed once per ratee under the extended policy. Keeps the policy's
/// community adjustment at `O(m·n)` overall instead of `O(m·n²)`.
pub(crate) type FrequentCache = HashMap<NodeId, (u64, i64)>;

/// The `O(m·n)` band-checking detector.
#[derive(Clone, Copy, Debug)]
pub struct OptimizedDetector {
    /// Detection thresholds.
    pub thresholds: Thresholds,
    /// Strict §IV procedure or the extended evaluation policy.
    pub policy: DetectionPolicy,
}

impl OptimizedDetector {
    /// Detector with the given thresholds and the strict §IV policy.
    pub fn new(thresholds: Thresholds) -> Self {
        OptimizedDetector { thresholds, policy: DetectionPolicy::STRICT }
    }

    /// Detector with an explicit policy.
    pub fn with_policy(thresholds: Thresholds, policy: DetectionPolicy) -> Self {
        OptimizedDetector { thresholds, policy }
    }

    /// Detection pass over the manager's view.
    pub fn detect(&self, input: &DetectionInput<'_>) -> DetectionReport {
        let meter = CostMeter::new();
        let high = input.high_reputed(&self.thresholds);
        let high_set: HashSet<NodeId> = high.iter().copied().collect();
        let mut checked: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut cache = FrequentCache::new();
        let mut pairs = Vec::new();
        for &i in &high {
            for &j in input.history.raters_of(i) {
                meter.element_check();
                let key = if i < j { (i, j) } else { (j, i) };
                if checked.contains(&key) {
                    continue;
                }
                if !high_set.contains(&j) {
                    continue;
                }
                checked.insert(key);
                let ev_fwd = self.check_direction(input, i, j, &meter, &mut cache);
                if self.policy.require_mutual {
                    let Some(fwd) = ev_fwd else { continue };
                    let Some(rev) = self.check_direction(input, j, i, &meter, &mut cache) else {
                        continue;
                    };
                    pairs.push(SuspectPair::new(j, i, Some(fwd), Some(rev)));
                } else {
                    let ev_rev = self.check_direction(input, j, i, &meter, &mut cache);
                    if ev_fwd.is_none() && ev_rev.is_none() {
                        continue;
                    }
                    pairs.push(SuspectPair::new(j, i, ev_fwd, ev_rev));
                }
            }
        }
        DetectionReport::new(pairs, meter.snapshot())
    }

    /// Direction test: is `ratee`'s reputation inside the Formula (2)
    /// collusion band for rater `rater`? O(1) per pair under the strict
    /// policy; amortized O(1) under the extended policy (one row aggregation
    /// per ratee, cached).
    pub(crate) fn check_direction(
        &self,
        input: &DetectionInput<'_>,
        ratee: NodeId,
        rater: NodeId,
        meter: &CostMeter,
        cache: &mut FrequentCache,
    ) -> Option<DirectionEvidence> {
        let h = input.history;
        meter.element_check();
        let pair = h.pair(rater, ratee);
        let n_pair = pair.total;
        if !self.thresholds.is_frequent(n_pair) {
            return None;
        }
        let (n_eff, r_eff) = if self.policy.community_excludes_frequent {
            // ratee's view restricted to community + the tested partner
            let (freq_n, freq_signed) = match cache.get(&ratee) {
                Some(&agg) => agg,
                None => {
                    let raters = h.raters_of(ratee);
                    meter.row_scan(raters.len() as u64);
                    let mut n = 0u64;
                    let mut signed = 0i64;
                    for &k in raters {
                        let c = h.pair(k, ratee);
                        if self.thresholds.is_frequent(c.total) {
                            n += c.total;
                            signed += c.signed();
                        }
                    }
                    cache.insert(ratee, (n, signed));
                    (n, signed)
                }
            };
            (
                h.ratings_for(ratee) - freq_n + n_pair,
                h.signed_reputation(ratee) - freq_signed + pair.signed(),
            )
        } else {
            (h.ratings_for(ratee), h.signed_reputation(ratee))
        };
        if n_eff == n_pair {
            return None; // no community evidence (same convention as Basic)
        }
        meter.band_check();
        let band = formula_band(self.thresholds.t_a, self.thresholds.t_b, n_eff, n_pair);
        if !band.contains(r_eff as f64) {
            return None;
        }
        Some(DirectionEvidence {
            pair_ratings: n_pair,
            fraction_a: None,
            fraction_b: None,
            signed_reputation: r_eff,
        })
    }

    /// [`OptimizedDetector::detect`] on the frozen CSR snapshot: the same
    /// sparse row walk and metering, with the pair probe a binary search in
    /// the rater's reverse row and the extended-policy frequent aggregates
    /// served from the snapshot's precomputed table (falling back to a row
    /// pass when the snapshot was built without them). Produces a
    /// bit-identical [`DetectionReport`] (pairs *and* cost) to the legacy
    /// path — enforced by `tests/detection_equivalence.rs`. Generic over the
    /// [`SnapshotView`], so the same kernel runs on monolithic and sharded
    /// snapshots.
    pub fn detect_snapshot<V: SnapshotView>(
        &self,
        input: &SnapshotInput<'_, V>,
    ) -> DetectionReport {
        let meter = CostMeter::new();
        let snap = input.snapshot;
        let high = input.high_reputed_idx(&self.thresholds);
        let mut is_high = vec![false; snap.n()];
        for &i in &high {
            is_high[i as usize] = true;
        }
        // pre-size from the stored cell count: every marked pair is an edge
        let mut checked = PairSet::with_capacity(snap.nnz());
        let mut cache: Vec<Option<(u64, i64)>> = vec![None; snap.n()];
        let mut pairs = Vec::new();
        for &i in &high {
            let (cols, _) = snap.row(i);
            for &j in cols {
                meter.element_check();
                if checked.contains(i, j) {
                    continue;
                }
                if !is_high[j as usize] {
                    continue;
                }
                checked.insert(i, j);
                let ev_fwd = self.direction_cached(snap, i, Some(j), &meter, &mut cache);
                if self.policy.require_mutual {
                    let Some(fwd) = ev_fwd else { continue };
                    let Some(rev) = self.direction_cached(snap, j, Some(i), &meter, &mut cache)
                    else {
                        continue;
                    };
                    pairs.push(SuspectPair::new(
                        snap.node_id(j),
                        snap.node_id(i),
                        Some(fwd),
                        Some(rev),
                    ));
                } else {
                    let ev_rev = self.direction_cached(snap, j, Some(i), &meter, &mut cache);
                    if ev_fwd.is_none() && ev_rev.is_none() {
                        continue;
                    }
                    pairs.push(SuspectPair::new(snap.node_id(j), snap.node_id(i), ev_fwd, ev_rev));
                }
            }
        }
        DetectionReport::new(pairs, meter.snapshot())
    }

    /// Rayon-parallel [`OptimizedDetector::detect_snapshot`]: high rows are
    /// walked concurrently and the per-ratee frequent aggregates are shared
    /// through lock-free [`OnceLock`] cells. There is no cross-row pair
    /// marking, so metered cost is up to 2× the sequential pass (each
    /// unordered pair may be examined from both sides;
    /// [`DetectionReport::new`] deduplicates); the reported pairs are
    /// identical.
    pub fn detect_par<V: SnapshotView>(&self, input: &SnapshotInput<'_, V>) -> DetectionReport {
        let meter = CostMeter::new();
        let snap = input.snapshot;
        let high = input.high_reputed_idx(&self.thresholds);
        let mut is_high = vec![false; snap.n()];
        for &i in &high {
            is_high[i as usize] = true;
        }
        let agg: Vec<OnceLock<(u64, i64)>> = (0..snap.n()).map(|_| OnceLock::new()).collect();
        let meter_ref = &meter;
        let is_high_ref = &is_high;
        let agg_ref = &agg;
        let mut pairs: Vec<SuspectPair> = high
            .par_iter()
            .flat_map_iter(|&i| {
                let (cols, _) = snap.row(i);
                cols.iter().filter_map(move |&j| {
                    meter_ref.element_check();
                    if !is_high_ref[j as usize] {
                        return None;
                    }
                    let ev_fwd = self.direction_once(snap, i, Some(j), meter_ref, agg_ref);
                    if self.policy.require_mutual {
                        let fwd = ev_fwd?;
                        let rev = self.direction_once(snap, j, Some(i), meter_ref, agg_ref)?;
                        Some(SuspectPair::new(
                            snap.node_id(j),
                            snap.node_id(i),
                            Some(fwd),
                            Some(rev),
                        ))
                    } else {
                        let ev_rev = self.direction_once(snap, j, Some(i), meter_ref, agg_ref);
                        if ev_fwd.is_none() && ev_rev.is_none() {
                            return None;
                        }
                        Some(SuspectPair::new(snap.node_id(j), snap.node_id(i), ev_fwd, ev_rev))
                    }
                })
            })
            .collect();
        // sort + dedup here, not just in the report constructor, so the
        // parallel collection order can never leak into the output
        crate::report::normalize_pairs(&mut pairs);
        DetectionReport::new(pairs, meter.snapshot())
    }

    /// Snapshot analogue of [`OptimizedDetector::check_direction`], with the
    /// extended-policy frequent aggregate supplied lazily by `freq_of` so
    /// sequential and parallel callers can share their own cache shapes.
    /// Metering is placed identically to the legacy path. `rater` is `None`
    /// when the rater is not interned in this snapshot (a partitioned
    /// manager probing an unknown partner) — the probe then sees zero
    /// counters, exactly like the legacy hash lookup of an absent pair.
    pub(crate) fn check_direction_snap<V: SnapshotView>(
        &self,
        snap: &V,
        ratee: u32,
        rater: Option<u32>,
        meter: &CostMeter,
        freq_of: impl FnOnce() -> (u64, i64),
    ) -> Option<DirectionEvidence> {
        meter.element_check();
        let pair = rater.map(|r| snap.pair(r, ratee)).unwrap_or_default();
        let n_pair = pair.total;
        if !self.thresholds.is_frequent(n_pair) {
            return None;
        }
        let totals = snap.totals_of(ratee);
        let (n_eff, r_eff) = if self.policy.community_excludes_frequent {
            // ratee's view restricted to community + the tested partner
            let (freq_n, freq_signed) = freq_of();
            (totals.total - freq_n + n_pair, totals.signed() - freq_signed + pair.signed())
        } else {
            (totals.total, totals.signed())
        };
        if n_eff == n_pair {
            return None; // no community evidence (same convention as Basic)
        }
        meter.band_check();
        let band = formula_band(self.thresholds.t_a, self.thresholds.t_b, n_eff, n_pair);
        if !band.contains(r_eff as f64) {
            return None;
        }
        Some(DirectionEvidence {
            pair_ratings: n_pair,
            fraction_a: None,
            fraction_b: None,
            signed_reputation: r_eff,
        })
    }

    /// Sequential snapshot direction test backed by a dense per-ratee cache.
    /// The cache-miss row scan is metered exactly like the legacy
    /// `FrequentCache` fill, even when the actual numbers come from the
    /// snapshot's precomputed table.
    pub(crate) fn direction_cached<V: SnapshotView>(
        &self,
        snap: &V,
        ratee: u32,
        rater: Option<u32>,
        meter: &CostMeter,
        cache: &mut [Option<(u64, i64)>],
    ) -> Option<DirectionEvidence> {
        let t_n = self.thresholds.t_n;
        self.check_direction_snap(snap, ratee, rater, meter, || {
            if let Some(agg) = cache[ratee as usize] {
                return agg;
            }
            let (cols, _) = snap.row(ratee);
            meter.row_scan(cols.len() as u64);
            let agg = snap.frequent_agg(t_n, ratee).unwrap_or_else(|| snap.row_freq(ratee, t_n));
            cache[ratee as usize] = Some(agg);
            agg
        })
    }

    /// [`OptimizedDetector::detect_snapshot`] with a Formula (2) band
    /// pre-filter: before touching a candidate pair's row data, the pass
    /// asks whether the *row* (ratee) can possibly satisfy the band for
    /// **any** rater, using only the per-row totals already in cache:
    ///
    /// * `N_i < T_N` — no rater can reach the frequency gate, since
    ///   `N(j,i) ≤ N_i`;
    /// * `R_i ≥ N_i` — the band's upper bound
    ///   `2·T_b·(N_i − N(j,i)) + 2·N(j,i) − N_i` never exceeds `N_i` for
    ///   `T_b ≤ 1`, so a fully-positive reputation sits on or above every
    ///   band (applied only when `T_b ≤ 1 − 1e-9` and `N_i ≤ 10⁶`, where
    ///   the f64 evaluation error of the bound is provably below the
    ///   `2·(1 − T_b)` margin);
    /// * `R_i <` the band's lower bound at `N(j,i) = T_N` — the computed
    ///   lower bound `2·T_a·N(j,i) − N_i` is monotone non-decreasing in
    ///   `N(j,i)` (rounding is monotone), so falling below it at the
    ///   smallest feasible count falls below it everywhere.
    ///
    /// A pair is skipped when the prunable rows make a flag impossible:
    /// under `require_mutual` either endpoint being prunable kills the
    /// pair; otherwise both must be prunable. Pruning is sound only for
    /// the strict community definition — under
    /// `community_excludes_frequent` the band runs on *adjusted* totals,
    /// so the pre-filter disables itself and the pass degenerates to
    /// [`OptimizedDetector::detect_snapshot`].
    ///
    /// The suspect set is bit-identical to the unpruned pass (enforced by
    /// `tests/scale_props.rs`); the metered cost is lower, which is the
    /// point.
    pub fn detect_pruned<V: SnapshotView>(
        &self,
        input: &SnapshotInput<'_, V>,
    ) -> (DetectionReport, PruneStats) {
        let meter = CostMeter::new();
        let snap = input.snapshot;
        let high = input.high_reputed_idx(&self.thresholds);
        let mut is_high = vec![false; snap.n()];
        for &i in &high {
            is_high[i as usize] = true;
        }
        let prune_active = !self.policy.community_excludes_frequent;
        let mut stats = PruneStats::default();
        let mut prunable = vec![false; snap.n()];
        if prune_active {
            for &i in &high {
                if self.row_prunable(snap.totals_of(i)) {
                    prunable[i as usize] = true;
                    stats.rows_pruned += 1;
                }
            }
        }
        let mut checked = PairSet::with_capacity(snap.nnz());
        let mut cache: Vec<Option<(u64, i64)>> = vec![None; snap.n()];
        let mut pairs = Vec::new();
        for &i in &high {
            let row_dead = prunable[i as usize];
            let (cols, _) = snap.row(i);
            for &j in cols {
                meter.element_check();
                if checked.contains(i, j) {
                    continue;
                }
                if !is_high[j as usize] {
                    continue;
                }
                checked.insert(i, j);
                if prune_active {
                    let skip = if self.policy.require_mutual {
                        row_dead || prunable[j as usize]
                    } else {
                        row_dead && prunable[j as usize]
                    };
                    if skip {
                        stats.pairs_pruned += 1;
                        continue;
                    }
                    stats.pairs_examined += 1;
                }
                let ev_fwd = self.direction_cached(snap, i, Some(j), &meter, &mut cache);
                if self.policy.require_mutual {
                    let Some(fwd) = ev_fwd else { continue };
                    let Some(rev) = self.direction_cached(snap, j, Some(i), &meter, &mut cache)
                    else {
                        continue;
                    };
                    pairs.push(SuspectPair::new(
                        snap.node_id(j),
                        snap.node_id(i),
                        Some(fwd),
                        Some(rev),
                    ));
                } else {
                    let ev_rev = self.direction_cached(snap, j, Some(i), &meter, &mut cache);
                    if ev_fwd.is_none() && ev_rev.is_none() {
                        continue;
                    }
                    pairs.push(SuspectPair::new(snap.node_id(j), snap.node_id(i), ev_fwd, ev_rev));
                }
            }
        }
        (DetectionReport::new(pairs, meter.snapshot()), stats)
    }

    /// Whether `totals` prove that **no** rater can put this ratee inside
    /// its Formula (2) band (see [`OptimizedDetector::detect_pruned`] for
    /// the three rules and their soundness arguments). Only valid under the
    /// strict community definition.
    ///
    /// This scalar form is the bit-identity oracle for
    /// [`OptimizedDetector::rows_prunable_batch`]; the property tests
    /// compare the two lane by lane.
    pub fn row_prunable(&self, totals: NodeTotals) -> bool {
        let t = &self.thresholds;
        let n_i = totals.total;
        if n_i < t.t_n {
            return true; // no rater can be frequent: N(j,i) ≤ N_i < T_N
        }
        let r = totals.signed();
        if t.t_b <= 1.0 - 1e-9 && n_i <= 1_000_000 && r >= n_i as i64 {
            return true; // on or above every band's upper bound
        }
        // below the smallest feasible lower bound (monotone in N(j,i))
        (r as f64) < formula_reputation(t.t_a, 0.0, n_i, t.t_n)
    }

    /// Batch form of [`OptimizedDetector::row_prunable`] over one shard's
    /// structure-of-arrays totals columns: sets `out[k]` to `1` iff global
    /// row `cols.base + k` is prunable, `0` otherwise.
    ///
    /// Every lane evaluates the same three rules as the scalar oracle with
    /// identical arithmetic, branch-free (`|`/`&` on the rule booleans
    /// instead of short-circuits) so LLVM autovectorizes the loop over the
    /// contiguous columns. The one rewrite is rule 3's lower bound: the
    /// scalar path calls `formula_reputation(t_a, 0.0, n_i, t_n)`, whose
    /// `b = 0` term is `+0.0 · x` with `x` a finite non-negative `f64` —
    /// always exactly `+0.0`, and `+0.0 + y` either equals `y` or flips a
    /// negative zero, which every `< r` comparison treats identically. The
    /// batch lane therefore hoists `2·T_a·T_N` out of the loop and compares
    /// against `lo_base − N_i` directly; `tests/pipeline_props.rs` asserts
    /// lane-for-lane equality with the oracle over adversarial totals.
    ///
    /// With the `explicit-simd` cargo feature the loop runs over fixed
    /// `[_; 4]` lane arrays instead (same per-lane arithmetic, still safe
    /// code), pinning the vector shape rather than trusting the
    /// autovectorizer.
    pub fn rows_prunable_batch(&self, cols: &TotalsColumns<'_>, out: &mut [u8]) {
        let rows = cols.total.len();
        assert!(
            out.len() >= rows && cols.positive.len() == rows && cols.negative.len() == rows,
            "totals columns and output flags disagree on row count"
        );
        let t = &self.thresholds;
        let upper_armed = t.t_b <= 1.0 - 1e-9;
        let lo_base = 2.0 * t.t_a * t.t_n as f64;
        prunable_batch_impl(t.t_n, upper_armed, lo_base, cols, &mut out[..rows]);
    }

    /// Parallel snapshot direction test backed by shared [`OnceLock`] cells.
    pub(crate) fn direction_once<V: SnapshotView>(
        &self,
        snap: &V,
        ratee: u32,
        rater: Option<u32>,
        meter: &CostMeter,
        agg: &[OnceLock<(u64, i64)>],
    ) -> Option<DirectionEvidence> {
        let t_n = self.thresholds.t_n;
        self.check_direction_snap(snap, ratee, rater, meter, || {
            *agg[ratee as usize].get_or_init(|| {
                let (cols, _) = snap.row(ratee);
                meter.row_scan(cols.len() as u64);
                snap.frequent_agg(t_n, ratee).unwrap_or_else(|| snap.row_freq(ratee, t_n))
            })
        })
    }
}

/// One lane of [`OptimizedDetector::rows_prunable_batch`]: the three
/// prunability rules evaluated branch-free. The signed reputation clamps
/// exactly like [`NodeTotals::signed`] (`i64::try_from(v).unwrap_or(MAX)`
/// is `min` against `i64::MAX`, then a saturating subtract).
#[inline(always)]
fn prunable_lane(
    t_n: u64,
    upper_armed: bool,
    lo_base: f64,
    total: u64,
    positive: u64,
    negative: u64,
) -> u8 {
    let p = positive.min(i64::MAX as u64) as i64;
    let n = negative.min(i64::MAX as u64) as i64;
    let r = p.saturating_sub(n);
    let prunable = (total < t_n)
        | (upper_armed & (total <= 1_000_000) & (r >= total as i64))
        | ((r as f64) < lo_base - total as f64);
    prunable as u8
}

/// Autovectorized batch-kernel body: one branch-free pass over the SoA
/// columns, letting LLVM pick the vector width.
#[cfg(not(feature = "explicit-simd"))]
fn prunable_batch_impl(
    t_n: u64,
    upper_armed: bool,
    lo_base: f64,
    cols: &TotalsColumns<'_>,
    out: &mut [u8],
) {
    for (k, flag) in out.iter_mut().enumerate() {
        *flag = prunable_lane(
            t_n,
            upper_armed,
            lo_base,
            cols.total[k],
            cols.positive[k],
            cols.negative[k],
        );
    }
}

/// Explicit-SIMD batch-kernel body: fixed four-wide `[_; 4]` lane arrays
/// (safe code — the crate forbids `unsafe`, so no `std::arch`), scalar
/// tail. Per-lane arithmetic is [`prunable_lane`] verbatim, so the flags
/// are bit-identical to the autovectorized and scalar paths.
#[cfg(feature = "explicit-simd")]
fn prunable_batch_impl(
    t_n: u64,
    upper_armed: bool,
    lo_base: f64,
    cols: &TotalsColumns<'_>,
    out: &mut [u8],
) {
    const LANES: usize = 4;
    let rows = out.len();
    let chunks = rows / LANES * LANES;
    let mut k = 0;
    while k < chunks {
        let tt: [u64; LANES] = cols.total[k..k + LANES].try_into().expect("lane chunk");
        let pp: [u64; LANES] = cols.positive[k..k + LANES].try_into().expect("lane chunk");
        let nn: [u64; LANES] = cols.negative[k..k + LANES].try_into().expect("lane chunk");
        let mut flags = [0u8; LANES];
        for l in 0..LANES {
            flags[l] = prunable_lane(t_n, upper_armed, lo_base, tt[l], pp[l], nn[l]);
        }
        out[k..k + LANES].copy_from_slice(&flags);
        k += LANES;
    }
    for (j, flag) in out.iter_mut().enumerate().skip(chunks) {
        *flag = prunable_lane(
            t_n,
            upper_armed,
            lo_base,
            cols.total[j],
            cols.positive[j],
            cols.negative[j],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicDetector;
    use collusion_reputation::history::InteractionHistory;
    use collusion_reputation::id::SimTime;
    use collusion_reputation::rating::{Rating, RatingValue};
    use collusion_reputation::snapshot::DetectionSnapshot;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn thresholds() -> Thresholds {
        Thresholds::new(1.0, 20, 0.8, 0.2)
    }

    fn collusion_history(boost: u64, community_neg: u64) -> (InteractionHistory, Vec<NodeId>) {
        let mut h = InteractionHistory::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        for _ in 0..boost {
            h.record(Rating::positive(NodeId(1), NodeId(2), tick()));
            h.record(Rating::positive(NodeId(2), NodeId(1), tick()));
        }
        for k in 0..community_neg {
            h.record(Rating::negative(NodeId(10 + k % 3), NodeId(1), tick()));
            h.record(Rating::negative(NodeId(10 + k % 3), NodeId(2), tick()));
        }
        for k in 0..6 {
            h.record(Rating::positive(NodeId(10 + k % 3), NodeId(4), tick()));
        }
        let mut nodes: Vec<NodeId> = vec![NodeId(1), NodeId(2), NodeId(4)];
        nodes.extend((10..13).map(NodeId));
        (h, nodes)
    }

    #[test]
    fn detects_colluding_pair_via_band() {
        let (h, nodes) = collusion_history(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = OptimizedDetector::new(thresholds()).detect(&input);
        assert_eq!(report.pair_ids(), vec![(NodeId(1), NodeId(2))]);
        let fwd = report.pairs[0].low_boosts_high.unwrap();
        assert_eq!(fwd.signed_reputation, 25);
        assert!(fwd.fraction_a.is_none());
    }

    #[test]
    fn community_loved_node_not_flagged() {
        let (h, nodes) = collusion_history(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = OptimizedDetector::new(thresholds()).detect(&input);
        assert!(!report.is_colluder(NodeId(4)));
    }

    #[test]
    fn agrees_with_basic_on_canonical_scenarios() {
        for (boost, neg) in [(30, 5), (25, 3), (20, 1), (50, 20), (10, 2)] {
            let (h, nodes) = collusion_history(boost, neg);
            let input = DetectionInput::from_signed_history(&h, &nodes);
            let basic = BasicDetector::new(thresholds()).detect(&input);
            let opt = OptimizedDetector::new(thresholds()).detect(&input);
            assert_eq!(basic.pair_ids(), opt.pair_ids(), "disagreement at boost={boost} neg={neg}");
        }
    }

    #[test]
    fn optimized_never_misses_basic_pairs_randomized() {
        // Necessity of the band: on 200 random histories, every Basic pair
        // must appear in the Optimized report.
        let mut rng = SmallRng::seed_from_u64(0xc0ffee);
        for trial in 0..200 {
            let n_nodes = rng.random_range(4..12u64);
            let mut h = InteractionHistory::new();
            for t in 0..rng.random_range(50..300u64) {
                let a = rng.random_range(0..n_nodes);
                let mut b = rng.random_range(0..n_nodes);
                if a == b {
                    b = (b + 1) % n_nodes;
                }
                let v = if rng.random_bool(0.6) {
                    RatingValue::Positive
                } else {
                    RatingValue::Negative
                };
                h.record(Rating::new(NodeId(a), NodeId(b), v, SimTime(t)));
            }
            // inject one colluding pair half the time
            if rng.random_bool(0.5) {
                for t in 0..30 {
                    h.record(Rating::positive(NodeId(0), NodeId(1), SimTime(1000 + t)));
                    h.record(Rating::positive(NodeId(1), NodeId(0), SimTime(1000 + t)));
                }
            }
            let nodes: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
            let input = DetectionInput::from_signed_history(&h, &nodes);
            let th = Thresholds::new(1.0, 10, 0.8, 0.2);
            let basic = BasicDetector::new(th).detect(&input);
            let opt = OptimizedDetector::new(th).detect(&input);
            let opt_set: std::collections::BTreeSet<_> = opt.pair_ids().into_iter().collect();
            for p in basic.pair_ids() {
                assert!(
                    opt_set.contains(&p),
                    "trial {trial}: Basic found {p:?} but Optimized missed it"
                );
            }
        }
    }

    #[test]
    fn snapshot_path_is_bit_identical() {
        let (h, nodes) = collusion_history(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let snap = DetectionSnapshot::build(&h, &nodes);
        let sinput = SnapshotInput::from_signed(&snap, &nodes);
        for policy in [DetectionPolicy::STRICT, DetectionPolicy::EXTENDED] {
            let det = OptimizedDetector::with_policy(thresholds(), policy);
            let legacy = det.detect(&input);
            let fast = det.detect_snapshot(&sinput);
            assert_eq!(legacy.pairs, fast.pairs);
            assert_eq!(legacy.cost, fast.cost);
        }
    }

    #[test]
    fn snapshot_precomputed_aggregates_keep_costs_identical() {
        // built WITH frequent aggregates: the meter must still record the
        // legacy cache-fill row scans under the extended policy
        let (h, nodes) = collusion_history(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let snap = DetectionSnapshot::build_with_frequent(&h, &nodes, thresholds().t_n);
        let sinput = SnapshotInput::from_signed(&snap, &nodes);
        let det = OptimizedDetector::with_policy(thresholds(), DetectionPolicy::EXTENDED);
        let legacy = det.detect(&input);
        let fast = det.detect_snapshot(&sinput);
        assert_eq!(legacy.pairs, fast.pairs);
        assert_eq!(legacy.cost, fast.cost);
    }

    #[test]
    fn parallel_snapshot_agrees_with_sequential() {
        let (h, nodes) = collusion_history(30, 5);
        let snap = DetectionSnapshot::build(&h, &nodes);
        let sinput = SnapshotInput::from_signed(&snap, &nodes);
        for policy in [DetectionPolicy::STRICT, DetectionPolicy::EXTENDED] {
            let det = OptimizedDetector::with_policy(thresholds(), policy);
            let seq = det.detect_snapshot(&sinput);
            let par = det.detect_par(&sinput);
            assert_eq!(seq.pairs, par.pairs);
        }
    }

    #[test]
    fn costs_far_below_basic() {
        let (h, nodes) = collusion_history(40, 10);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let basic = BasicDetector::new(thresholds()).detect(&input);
        let opt = OptimizedDetector::new(thresholds()).detect(&input);
        assert_eq!(opt.cost.row_scans, 0, "optimized must never scan rows");
        assert!(
            opt.cost.total(1) < basic.cost.total(1),
            "optimized {} !< basic {}",
            opt.cost.total(1),
            basic.cost.total(1)
        );
    }

    #[test]
    fn infrequent_pair_skipped() {
        let (h, nodes) = collusion_history(10, 2); // below T_N=20
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = OptimizedDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn pair_without_community_evidence_skipped() {
        let mut h = InteractionHistory::new();
        for t in 0..30 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
            h.record(Rating::positive(NodeId(2), NodeId(1), SimTime(t)));
        }
        let nodes = vec![NodeId(1), NodeId(2)];
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = OptimizedDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn batch_prunable_matches_scalar_oracle() {
        // adversarial lane values: clamp edges, zero rows, the 1e6 upper
        // gate, and values straddling the lower-bound comparison
        let totals: Vec<(u64, u64, u64)> = vec![
            (0, 0, 0),
            (19, 19, 0),
            (20, 20, 0),
            (21, 0, 21),
            (1_000_000, 1_000_000, 0),
            (1_000_001, 1_000_001, 0),
            (40, 39, 1),
            (40, 8, 32),
            (u64::MAX, u64::MAX, 0),
            (u64::MAX, u64::MAX / 2, u64::MAX / 2),
            (100, i64::MAX as u64 + 7, 3),
            (50, 3, i64::MAX as u64 + 7),
        ];
        let (tot, pos, neg): (Vec<u64>, Vec<u64>, Vec<u64>) = totals.iter().fold(
            (Vec::new(), Vec::new(), Vec::new()),
            |(mut t, mut p, mut n), &(a, b, c)| {
                t.push(a);
                p.push(b);
                n.push(c);
                (t, p, n)
            },
        );
        for t_b in [0.2, 1.0] {
            let det = OptimizedDetector::new(Thresholds::new(1.0, 20, 0.8, t_b));
            let cols = collusion_reputation::sharded::TotalsColumns {
                base: 0,
                total: &tot,
                positive: &pos,
                negative: &neg,
            };
            let mut flags = vec![0u8; tot.len()];
            det.rows_prunable_batch(&cols, &mut flags);
            for (k, &(total, positive, negative)) in totals.iter().enumerate() {
                let expect = det.row_prunable(NodeTotals { total, positive, negative });
                assert_eq!(flags[k] != 0, expect, "lane {k} diverged (t_b={t_b})");
            }
        }
    }

    #[test]
    fn low_reputation_filter_applies() {
        let (h, nodes) = collusion_history(25, 40);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = OptimizedDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty(), "drowned colluders fail the C1 filter");
    }
}
