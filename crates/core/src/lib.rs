//! Collusion detection for P2P reputation systems — the primary contribution
//! of Li, Shen & Sapra, *ICPP 2012*.
//!
//! Two detectors are implemented, both driven by the collusion model the
//! paper distills from the Amazon/Overstock traces ([`model`]):
//!
//! * [`basic::BasicDetector`] ("Unoptimized", §IV.B) — the reputation
//!   manager scans its rating matrix row by row; for a high-reputed node
//!   `n_i` and a frequent high-reputed rater `n_j` it computes the positive
//!   fractions `a` (from `n_j`) and `b` (from everyone else) by scanning the
//!   full row, then repeats the check in the reverse direction.
//!   Complexity `O(m·n²)` (Proposition 4.1).
//!
//! * [`optimized::OptimizedDetector`] (§IV.C) — replaces the row scan with
//!   the closed-form reputation band of Formula (2) ([`formula`]), needing
//!   only `R_i`, `N_i` and `N(j,i)`. Complexity `O(m·n)` (Proposition 4.2).
//!
//! Both run centralized (one manager sees everything) or decentralized
//! ([`decentralized`]): reputation managers on a Chord ring each scan their
//! responsible nodes and exchange confirmation messages for cross-manager
//! pairs.
//!
//! Detection costs are metered ([`cost`]) to reproduce the paper's Figure 13
//! cost comparison, and [`sweep`] provides the threshold-tuning machinery the
//! paper lists as future work.
//!
//! # Quick example
//!
//! ```
//! use collusion_core::prelude::*;
//! use collusion_reputation::prelude::*;
//!
//! let mut hist = InteractionHistory::new();
//! // colluders n1 and n2 rate each other +1 thirty times …
//! for t in 0..30 {
//!     hist.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
//!     hist.record(Rating::positive(NodeId(2), NodeId(1), SimTime(t)));
//! }
//! // … while the community rates them negatively
//! for t in 0..10 {
//!     hist.record(Rating::negative(NodeId(3), NodeId(1), SimTime(t)));
//!     hist.record(Rating::negative(NodeId(4), NodeId(2), SimTime(t)));
//! }
//! let nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
//! let input = DetectionInput::from_signed_history(&hist, &nodes);
//! let report = OptimizedDetector::new(Thresholds::PAPER).detect(&input);
//! assert!(report.is_colluder(NodeId(1)) && report.is_colluder(NodeId(2)));
//! assert!(!report.is_colluder(NodeId(3)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod basic;
pub mod calibrate;
pub mod cost;
pub mod decentralized;
pub mod durability;
pub mod epoch;
pub mod fault;
pub mod formula;
pub mod group;
pub mod input;
pub mod mitigation;
pub mod model;
pub mod net;
pub mod optimized;
mod pairset;
pub mod pipeline;
pub mod policy;
pub mod report;
pub mod sweep;
pub mod system;

/// Re-exports of the commonly used types.
pub mod prelude {
    pub use crate::basic::BasicDetector;
    pub use crate::calibrate::{calibrate, Calibration};
    pub use crate::cost::{CostMeter, CostSnapshot};
    pub use crate::decentralized::{DecentralizedDetector, DecentralizedOutcome};
    pub use crate::durability::{
        DurabilityConfig, DurableEngine, EngineSetup, KillPoint, RecoveryReport,
    };
    pub use crate::epoch::{EpochEngine, EpochMethod, EpochStats};
    pub use crate::fault::{ChurnSchedule, ExchangeOutcome, FaultPlan, FaultSession, FaultStats};
    pub use crate::formula::{formula_band, formula_reputation, Fig4Surface};
    pub use crate::group::{GroupDetector, GroupDetectorConfig, GroupReport, SuspectGroup};
    pub use crate::input::{DetectionInput, SnapshotInput};
    pub use crate::mitigation::{apply_conservative_mitigation, apply_mitigation};
    pub use crate::model::{Characteristic, SuspectPair};
    pub use crate::optimized::{OptimizedDetector, PruneStats};
    pub use crate::pipeline::{
        IngestHandle, PipelineConfig, PipelineStats, PipelinedEngine, PublishedView, ViewCell,
        ViewReader,
    };
    pub use crate::policy::DetectionPolicy;
    pub use crate::report::{ConfusionMatrix, DetectionReport};
    pub use crate::sweep::{sweep_thresholds, SweepPoint};
    pub use crate::system::{DecentralizedSystem, RobustReport, SystemStats};
    pub use collusion_reputation::thresholds::Thresholds;
}
