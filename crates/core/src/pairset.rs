//! A fast set of unordered dense-index pairs for the detectors' duplicate
//! checks.
//!
//! The legacy kernels deduplicate with `HashSet<(NodeId, NodeId)>` — a
//! SipHash of sixteen bytes per membership test. On the snapshot path both
//! indices fit in a `u32`, so the unordered pair packs into one `u64` and
//! hashes with a single splitmix64 round.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// One-round splitmix64 finalizer — statistically strong enough for table
/// placement of packed pair keys, and a fraction of SipHash's cost.
#[derive(Default)]
pub struct SplitMixHasher {
    state: u64,
}

impl Hasher for SplitMixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // generic fallback (not used by PairSet, which only writes u64)
        for &b in bytes {
            self.state = (self.state ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        let mut z = value.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.state = z ^ (z >> 31);
    }
}

type PairHasher = BuildHasherDefault<SplitMixHasher>;

/// Set of *unordered* `{a, b}` pairs of dense `u32` indices.
#[derive(Debug, Default)]
pub struct PairSet {
    set: HashSet<u64, PairHasher>,
}

impl PairSet {
    /// Empty set with room for `cap` pairs.
    pub fn with_capacity(cap: usize) -> Self {
        PairSet { set: HashSet::with_capacity_and_hasher(cap, PairHasher::default()) }
    }

    #[inline]
    fn key(a: u32, b: u32) -> u64 {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ((lo as u64) << 32) | hi as u64
    }

    /// Whether `{a, b}` is in the set.
    #[inline]
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.set.contains(&Self::key(a, b))
    }

    /// Insert `{a, b}`; returns `true` if it was new.
    #[inline]
    pub fn insert(&mut self, a: u32, b: u32) -> bool {
        self.set.insert(Self::key(a, b))
    }

    /// Remove every pair, keeping the allocated table for reuse.
    #[inline]
    pub fn clear(&mut self) {
        self.set.clear();
    }

    /// Number of pairs stored.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_is_unordered() {
        let mut s = PairSet::with_capacity(4);
        assert!(s.insert(3, 7));
        assert!(s.contains(7, 3));
        assert!(!s.insert(7, 3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn distinct_pairs_distinct_keys() {
        let mut s = PairSet::default();
        assert!(s.is_empty());
        for a in 0..20u32 {
            for b in (a + 1)..20u32 {
                assert!(s.insert(a, b), "{a},{b} collided");
            }
        }
        assert_eq!(s.len(), 190);
        assert!(!s.contains(5, 21));
    }
}
