//! Detection reports and scoring against ground truth.

use crate::cost::CostSnapshot;
use crate::model::SuspectPair;
use collusion_reputation::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The outcome of one detection pass.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Suspected pairs, deduplicated, ordered by `(low, high)`.
    pub pairs: Vec<SuspectPair>,
    /// Operation cost of the pass.
    pub cost: CostSnapshot,
}

/// Normalize a kernel's suspect-pair output in place: order by the
/// unordered `(low, high)` id pair and drop duplicates. Duplicates arise
/// when both endpoints of a pair discover it independently (each from its
/// own row); [`crate::model::SuspectPair::new`] already canonicalizes the
/// endpoint/evidence orientation, so duplicates are byte-identical and
/// keeping the first is deterministic. Parallel kernels call this before
/// returning so their output ordering never depends on thread scheduling.
pub fn normalize_pairs(pairs: &mut Vec<SuspectPair>) {
    pairs.sort_by_key(|p| p.ids());
    pairs.dedup_by_key(|p| p.ids());
}

impl DetectionReport {
    /// Build a report, deduplicating and ordering pairs via
    /// [`normalize_pairs`].
    pub fn new(mut pairs: Vec<SuspectPair>, cost: CostSnapshot) -> Self {
        normalize_pairs(&mut pairs);
        DetectionReport { pairs, cost }
    }

    /// Every node implicated in at least one pair, ascending.
    pub fn colluders(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self.pairs.iter().flat_map(|p| [p.low, p.high]).collect();
        set.into_iter().collect()
    }

    /// Whether `node` was implicated.
    pub fn is_colluder(&self, node: NodeId) -> bool {
        self.pairs.iter().any(|p| p.involves(node))
    }

    /// The unordered id pairs, for set comparison between detectors.
    pub fn pair_ids(&self) -> Vec<(NodeId, NodeId)> {
        self.pairs.iter().map(|p| p.ids()).collect()
    }

    /// Score against ground-truth colluding pairs.
    pub fn score(&self, truth_pairs: &[(NodeId, NodeId)], all_nodes: usize) -> ConfusionMatrix {
        let norm = |&(a, b): &(NodeId, NodeId)| if a < b { (a, b) } else { (b, a) };
        let truth: BTreeSet<(NodeId, NodeId)> = truth_pairs.iter().map(norm).collect();
        let found: BTreeSet<(NodeId, NodeId)> = self.pair_ids().into_iter().collect();
        let tp = found.intersection(&truth).count() as u64;
        let fp = found.difference(&truth).count() as u64;
        let fnn = truth.difference(&found).count() as u64;
        // candidate pair universe: n·(n−1)/2
        let universe = (all_nodes as u64 * all_nodes.saturating_sub(1) as u64) / 2;
        let tn = universe.saturating_sub(tp + fp + fnn);
        ConfusionMatrix {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fnn,
            true_negatives: tn,
        }
    }
}

/// Pair-level confusion matrix for a detection pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Colluding pairs correctly flagged.
    pub true_positives: u64,
    /// Innocent pairs wrongly flagged.
    pub false_positives: u64,
    /// Colluding pairs missed.
    pub false_negatives: u64,
    /// Innocent pairs correctly left alone.
    pub true_negatives: u64,
}

impl ConfusionMatrix {
    /// Precision `tp / (tp + fp)`; 1.0 when nothing was flagged (vacuously
    /// precise).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DirectionEvidence;

    fn pair(a: u64, b: u64) -> SuspectPair {
        let ev = DirectionEvidence {
            pair_ratings: 30,
            fraction_a: None,
            fraction_b: None,
            signed_reputation: 0,
        };
        SuspectPair::new(NodeId(a), NodeId(b), Some(ev), Some(ev))
    }

    #[test]
    fn report_dedups_and_orders() {
        let r =
            DetectionReport::new(vec![pair(5, 2), pair(2, 5), pair(1, 3)], CostSnapshot::default());
        assert_eq!(r.pair_ids(), vec![(NodeId(1), NodeId(3)), (NodeId(2), NodeId(5))]);
        assert_eq!(r.colluders(), vec![NodeId(1), NodeId(2), NodeId(3), NodeId(5)]);
        assert!(r.is_colluder(NodeId(5)));
        assert!(!r.is_colluder(NodeId(4)));
    }

    #[test]
    fn perfect_detection_scores_one() {
        let r = DetectionReport::new(vec![pair(1, 2), pair(3, 4)], CostSnapshot::default());
        let cm = r.score(&[(NodeId(2), NodeId(1)), (NodeId(3), NodeId(4))], 10);
        assert_eq!(cm.true_positives, 2);
        assert_eq!(cm.false_positives, 0);
        assert_eq!(cm.false_negatives, 0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.true_negatives, 45 - 2);
    }

    #[test]
    fn misses_and_false_alarms_counted() {
        let r = DetectionReport::new(vec![pair(1, 2), pair(7, 8)], CostSnapshot::default());
        let cm = r.score(&[(NodeId(1), NodeId(2)), (NodeId(3), NodeId(4))], 10);
        assert_eq!(cm.true_positives, 1);
        assert_eq!(cm.false_positives, 1);
        assert_eq!(cm.false_negatives, 1);
        assert!((cm.precision() - 0.5).abs() < 1e-12);
        assert!((cm.recall() - 0.5).abs() < 1e-12);
        assert!((cm.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_vacuously_precise() {
        let r = DetectionReport::default();
        let cm = r.score(&[], 5);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        let cm2 = r.score(&[(NodeId(1), NodeId(2))], 5);
        assert_eq!(cm2.recall(), 0.0);
        assert_eq!(cm2.f1(), 0.0);
    }
}
