//! Empirical threshold calibration (§IV.B / future work §VI).
//!
//! "`T_a` and `T_b` can be determined by the historical data of `a` and `b`
//! of pairs of nodes with high interaction frequency." This module turns
//! that sentence into code: collect the `(a, b)` observations of every
//! frequent rater→ratee pair in a history, summarize their distributions,
//! and propose thresholds that separate the boosting cluster (`a` near 1,
//! `b` low) from ordinary loyal-customer pairs.

use collusion_reputation::history::InteractionHistory;
use collusion_reputation::id::NodeId;
use collusion_reputation::thresholds::Thresholds;
use serde::{Deserialize, Serialize};

/// One frequent pair's observed fractions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairObservation {
    /// The rater.
    pub rater: NodeId,
    /// The ratee.
    pub ratee: NodeId,
    /// Rating count `N(j,i)`.
    pub count: u64,
    /// Positive fraction from the rater (`a`).
    pub a: f64,
    /// Community positive fraction (`b`).
    pub b: f64,
}

/// Summary statistics of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Sample size.
    pub n: usize,
    /// Mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl SampleSummary {
    /// Summarize a sample (empty samples yield all-zero summaries).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return SampleSummary::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
        let n = sorted.len();
        let pct = |p: f64| sorted[(((n - 1) as f64) * p).round() as usize];
        SampleSummary {
            n,
            mean: sorted.iter().sum::<f64>() / n as f64,
            min: sorted[0],
            max: sorted[n - 1],
            p10: pct(0.10),
            p50: pct(0.50),
            p90: pct(0.90),
        }
    }
}

/// A calibration result: the observations, their summaries, and a proposed
/// threshold set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Calibration {
    /// Frequency threshold used to select pairs.
    pub t_n: u64,
    /// All frequent-pair observations.
    pub observations: Vec<PairObservation>,
    /// Distribution of `a` over the frequent pairs.
    pub a_summary: SampleSummary,
    /// Distribution of `b` over the frequent pairs.
    pub b_summary: SampleSummary,
    /// Proposed thresholds.
    pub proposed: Thresholds,
}

/// Collect frequent-pair observations and propose thresholds.
///
/// The proposal rule: boosting pairs concentrate at `a ≈ 1`, so `T_a` is
/// set at the 10th percentile of the high-`a` cluster (`a > 0.5`), floored
/// at 0.75; ordinary frequent customers have `b` near the platform's
/// positive base rate, so `T_b` is the 10th percentile of `b` among
/// high-`a` pairs, ceilinged at the overall median of `b` (flagging only
/// community outliers). `T_R` is carried over from `base`.
pub fn calibrate(
    history: &InteractionHistory,
    nodes: &[NodeId],
    t_n: u64,
    base: Thresholds,
) -> Calibration {
    let mut observations = Vec::new();
    for &ratee in nodes {
        for &rater in history.raters_of(ratee) {
            let c = history.pair(rater, ratee);
            if c.total < t_n {
                continue;
            }
            let a = c.positive_fraction().unwrap_or(0.0);
            let b = history.fraction_b(rater, ratee).unwrap_or(1.0);
            observations.push(PairObservation { rater, ratee, count: c.total, a, b });
        }
    }
    observations.sort_by_key(|o| (o.ratee, o.rater));
    let a_values: Vec<f64> = observations.iter().map(|o| o.a).collect();
    let b_values: Vec<f64> = observations.iter().map(|o| o.b).collect();
    let a_summary = SampleSummary::of(&a_values);
    let b_summary = SampleSummary::of(&b_values);

    // threshold proposal (see doc comment)
    let high_a: Vec<&PairObservation> = observations.iter().filter(|o| o.a > 0.5).collect();
    let t_a = if high_a.is_empty() {
        base.t_a
    } else {
        let s = SampleSummary::of(&high_a.iter().map(|o| o.a).collect::<Vec<_>>());
        s.p10.max(0.75)
    };
    let t_b = if high_a.is_empty() {
        base.t_b
    } else {
        let s = SampleSummary::of(&high_a.iter().map(|o| o.b).collect::<Vec<_>>());
        // flag pairs whose community fraction is an outlier on the low
        // side: a small margin above the observed low cluster, never past
        // the halfway point (a community that is half-negative is ambiguous)
        (s.p10 + 0.05).min(0.5)
    };
    Calibration {
        t_n,
        observations,
        a_summary,
        b_summary,
        proposed: Thresholds::new(base.t_r, t_n, t_a.clamp(0.0, 1.0), t_b.clamp(0.0, 1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collusion_reputation::id::SimTime;
    use collusion_reputation::rating::Rating;

    #[test]
    fn summary_percentiles() {
        let s = SampleSummary::of(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.p50, 0.5);
        assert_eq!(s.mean, 0.5);
        assert_eq!(SampleSummary::of(&[]), SampleSummary::default());
    }

    #[test]
    fn calibration_recovers_boosting_cluster() {
        let mut h = InteractionHistory::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        // three boosting pairs: a = 1, community negative
        for (b, s) in [(10u64, 1u64), (11, 2), (12, 3)] {
            for _ in 0..30 {
                h.record(Rating::positive(NodeId(b), NodeId(s), tick()));
            }
            for k in 0..10 {
                h.record(Rating::negative(NodeId(20 + k), NodeId(s), tick()));
            }
        }
        // two loyal-customer pairs: a ≈ 0.8, community positive
        for (b, s) in [(13u64, 4u64), (14, 5)] {
            for i in 0..30 {
                let r = if i % 5 == 0 {
                    Rating::negative(NodeId(b), NodeId(s), tick())
                } else {
                    Rating::positive(NodeId(b), NodeId(s), tick())
                };
                h.record(r);
            }
            for k in 0..10 {
                h.record(Rating::positive(NodeId(20 + k), NodeId(s), tick()));
            }
        }
        let nodes: Vec<NodeId> = (1..=5).map(NodeId).collect();
        let cal = calibrate(&h, &nodes, 20, Thresholds::PAPER);
        assert_eq!(cal.observations.len(), 5);
        assert!(cal.a_summary.max == 1.0);
        // proposed thresholds separate boosters (a=1, b=0) from loyal
        // customers (a=0.8, b=1.0)
        let th = cal.proposed;
        let boosters = cal
            .observations
            .iter()
            .filter(|o| th.a_suspicious(o.a) && th.b_suspicious(o.b))
            .count();
        assert_eq!(boosters, 3, "proposal {th:?} over {:?}", cal.observations);
    }

    #[test]
    fn empty_history_falls_back_to_base() {
        let h = InteractionHistory::new();
        let cal = calibrate(&h, &[NodeId(1)], 20, Thresholds::PAPER);
        assert!(cal.observations.is_empty());
        assert_eq!(cal.proposed.t_a, Thresholds::PAPER.t_a);
        assert_eq!(cal.proposed.t_b, Thresholds::PAPER.t_b);
    }

    #[test]
    fn frequency_filter_applies() {
        let mut h = InteractionHistory::new();
        for t in 0..10u64 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
        }
        let cal = calibrate(&h, &[NodeId(2)], 20, Thresholds::PAPER);
        assert!(cal.observations.is_empty(), "10 < T_N = 20 must be filtered");
        let cal = calibrate(&h, &[NodeId(2)], 10, Thresholds::PAPER);
        assert_eq!(cal.observations.len(), 1);
        assert_eq!(cal.observations[0].count, 10);
    }
}
