//! Operation-cost accounting (Figure 13).
//!
//! The paper defines operation cost as "the number of computer cycles for
//! thwarting collusion". Hardware cycle counts are not portable, so — per the
//! substitution note in `DESIGN.md` — we count abstract operations instead:
//! matrix-element inspections, full row scans, band evaluations, comparisons
//! and inter-manager messages. The *shape* of Figure 13 (Unoptimized ≫
//! EigenTrust > Optimized; EigenTrust flat in the number of colluders)
//! depends only on these counts.
//!
//! [`CostMeter`] uses relaxed atomics so the rayon-parallel basic detector
//! can meter from many threads without locks; `Relaxed` suffices because the
//! counters are statistics, not synchronization.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Thread-safe operation counters.
#[derive(Debug, Default)]
pub struct CostMeter {
    element_checks: AtomicU64,
    row_scans: AtomicU64,
    scanned_elements: AtomicU64,
    band_checks: AtomicU64,
    messages: AtomicU64,
    reputation_ops: AtomicU64,
}

impl CostMeter {
    /// Fresh meter with all counters at zero.
    pub fn new() -> Self {
        CostMeter::default()
    }

    /// One matrix-element inspection (reading `N(j,i)` / `R_j` for a pair).
    #[inline]
    pub fn element_check(&self) {
        self.element_checks.fetch_add(1, Relaxed);
    }

    /// One full row scan of `elements` entries (the basic detector computing
    /// `N⁺(−j,i)` and `N(−j,i)`).
    #[inline]
    pub fn row_scan(&self, elements: u64) {
        self.row_scans.fetch_add(1, Relaxed);
        self.scanned_elements.fetch_add(elements, Relaxed);
    }

    /// One Formula (2) band evaluation (the optimized detector).
    #[inline]
    pub fn band_check(&self) {
        self.band_checks.fetch_add(1, Relaxed);
    }

    /// One inter-manager message (decentralized detection).
    #[inline]
    pub fn message(&self) {
        self.messages.fetch_add(1, Relaxed);
    }

    /// `n` reputation-calculation operations (EigenTrust multiply-adds).
    #[inline]
    pub fn reputation_ops(&self, n: u64) {
        self.reputation_ops.fetch_add(n, Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            element_checks: self.element_checks.load(Relaxed),
            row_scans: self.row_scans.load(Relaxed),
            scanned_elements: self.scanned_elements.load(Relaxed),
            band_checks: self.band_checks.load(Relaxed),
            messages: self.messages.load(Relaxed),
            reputation_ops: self.reputation_ops.load(Relaxed),
        }
    }
}

/// An immutable view of a [`CostMeter`] at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostSnapshot {
    /// Matrix-element inspections.
    pub element_checks: u64,
    /// Full row scans performed.
    pub row_scans: u64,
    /// Total elements touched by row scans.
    pub scanned_elements: u64,
    /// Formula (2) band evaluations.
    pub band_checks: u64,
    /// Inter-manager messages.
    pub messages: u64,
    /// Reputation-calculation operations.
    pub reputation_ops: u64,
}

impl CostSnapshot {
    /// The single scalar plotted in Figure 13: every counted operation,
    /// summed. Messages are weighted by `message_weight` since a network
    /// round-trip costs far more than an in-memory comparison (default used
    /// by the benches is 1 so shapes stay comparable to the paper's
    /// cycle counts).
    pub fn total(&self, message_weight: u64) -> u64 {
        self.element_checks
            + self.scanned_elements
            + self.band_checks
            + self.messages * message_weight
            + self.reputation_ops
    }

    /// Difference `self − earlier`, for per-phase accounting.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            element_checks: self.element_checks - earlier.element_checks,
            row_scans: self.row_scans - earlier.row_scans,
            scanned_elements: self.scanned_elements - earlier.scanned_elements,
            band_checks: self.band_checks - earlier.band_checks,
            messages: self.messages - earlier.messages,
            reputation_ops: self.reputation_ops - earlier.reputation_ops,
        }
    }

    /// Element-wise sum, for aggregating runs.
    pub fn plus(&self, other: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            element_checks: self.element_checks + other.element_checks,
            row_scans: self.row_scans + other.row_scans,
            scanned_elements: self.scanned_elements + other.scanned_elements,
            band_checks: self.band_checks + other.band_checks,
            messages: self.messages + other.messages,
            reputation_ops: self.reputation_ops + other.reputation_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = CostMeter::new();
        m.element_check();
        m.element_check();
        m.row_scan(10);
        m.band_check();
        m.message();
        m.reputation_ops(5);
        let s = m.snapshot();
        assert_eq!(s.element_checks, 2);
        assert_eq!(s.row_scans, 1);
        assert_eq!(s.scanned_elements, 10);
        assert_eq!(s.band_checks, 1);
        assert_eq!(s.messages, 1);
        assert_eq!(s.reputation_ops, 5);
    }

    #[test]
    fn total_weights_messages() {
        let s = CostSnapshot {
            element_checks: 1,
            row_scans: 0,
            scanned_elements: 2,
            band_checks: 3,
            messages: 4,
            reputation_ops: 5,
        };
        assert_eq!(s.total(1), 1 + 2 + 3 + 4 + 5);
        assert_eq!(s.total(10), 1 + 2 + 3 + 40 + 5);
    }

    #[test]
    fn since_subtracts_elementwise() {
        let m = CostMeter::new();
        m.element_check();
        let first = m.snapshot();
        m.element_check();
        m.row_scan(7);
        let second = m.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.element_checks, 1);
        assert_eq!(delta.scanned_elements, 7);
    }

    #[test]
    fn plus_adds_elementwise() {
        let a = CostSnapshot { element_checks: 1, messages: 2, ..Default::default() };
        let b = CostSnapshot { element_checks: 3, band_checks: 4, ..Default::default() };
        let c = a.plus(&b);
        assert_eq!(c.element_checks, 4);
        assert_eq!(c.messages, 2);
        assert_eq!(c.band_checks, 4);
    }

    #[test]
    fn meter_is_sharable_across_threads() {
        let m = CostMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.element_check();
                    }
                });
            }
        });
        assert_eq!(m.snapshot().element_checks, 4000);
    }
}
