//! A complete decentralized reputation system with collusion detection —
//! §IV.A's architecture end to end.
//!
//! Unlike [`crate::decentralized::DecentralizedDetector`], which evaluates
//! the protocol against a shared view (useful for equivalence proofs), a
//! [`DecentralizedSystem`] keeps the managers' data **physically
//! partitioned**:
//!
//! * managers (the "power nodes") form a Chord ring;
//! * a rating about `n_i` is routed with `Insert(ID_i, rating)` from the
//!   submitter's gateway manager to the DHT owner of `ID_i`, paying real
//!   routing hops;
//! * each manager holds only the interaction history *about its own
//!   responsible nodes* and computes their reputations from that data
//!   alone;
//! * `Lookup(ID_i)` fetches a reputation across the ring (hop-counted);
//! * detection runs per manager on its local slice, with request/response
//!   messages to the partner's manager for the cross-manager reverse check
//!   — exactly the paper's message flow.
//!
//! The end-to-end tests assert the partitioned system reaches the same
//! verdicts as a centralized manager fed the identical rating stream.

use crate::basic::BasicDetector;
use crate::cost::CostMeter;
use crate::decentralized::Method;
use crate::durability::DurabilityError;
use crate::fault::{ChurnSchedule, FaultPlan, FaultSession, FaultStats};
use crate::input::SnapshotInput;
use crate::model::{DirectionEvidence, SuspectPair};
use crate::optimized::OptimizedDetector;
use crate::policy::DetectionPolicy;
use crate::report::DetectionReport;
use collusion_dht::hash::consistent_hash;
use collusion_dht::id::Key;
use collusion_dht::ring::ChordRing;
use collusion_dht::routing::Router;
use collusion_reputation::history::InteractionHistory;
use collusion_reputation::id::NodeId;
use collusion_reputation::rating::Rating;
use collusion_reputation::snapshot::DetectionSnapshot;
use collusion_reputation::thresholds::Thresholds;
use collusion_reputation::wal::{replay_bytes, SyncPolicy, Wal, WalRecord};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Cumulative network-cost counters of a running system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// `Insert` operations (one per submitted rating).
    pub inserts: u64,
    /// `Lookup` operations (reputation queries).
    pub lookups: u64,
    /// Detection confirmation messages (requests + responses).
    pub detection_messages: u64,
    /// Total Chord routing hops across all operations.
    pub hops: u64,
    /// Replica copies pushed to backup managers (inserts and re-replication
    /// after membership changes; one message each).
    pub replica_messages: u64,
    /// Node histories recovered from a backup after a manager crash.
    pub recovered_nodes: u64,
    /// Node histories irrecoverably lost to a crash (no surviving replica).
    pub lost_nodes: u64,
    /// Node histories rebuilt by replaying the system WAL after a manager
    /// crash — the preferred path whenever the disk copy is at least as
    /// complete as the best surviving replica.
    pub disk_recovered_nodes: u64,
}

/// The system-wide write-ahead log: every accepted submit is appended
/// *before* it is applied, fsync'd per the attached [`SyncPolicy`].
/// Shared behind a mutex so a cloned system keeps appending to the same
/// durable stream (clones model restarted processes over one disk).
#[derive(Clone, Debug)]
struct SystemWal {
    wal: Arc<Mutex<Wal>>,
    sync_policy: SyncPolicy,
    appends_since_sync: u64,
}

/// Result of a detection round run under a [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct RobustReport {
    /// Confirmed pairs (cross-manager round-trip completed), plus meter.
    pub report: DetectionReport,
    /// Pairs whose confirmation exchange exhausted its retry budget:
    /// forward evidence only, reported instead of dropped.
    pub unconfirmed: Vec<SuspectPair>,
    /// Retry / drop / completeness accounting for the round.
    pub fault: FaultStats,
}

/// The §IV.A decentralized reputation system.
#[derive(Clone, Debug)]
pub struct DecentralizedSystem {
    thresholds: Thresholds,
    method: Method,
    policy: DetectionPolicy,
    ring: ChordRing,
    key_to_manager: HashMap<u64, NodeId>,
    /// manager → interaction history about its responsible nodes
    histories: HashMap<NodeId, InteractionHistory>,
    /// node → owning manager key (cached consistent-hash ownership)
    manager_of: HashMap<NodeId, Key>,
    /// registered participant nodes, ascending
    nodes: Vec<NodeId>,
    stats: SystemStats,
    /// Total copies of each node's history (primary + backups). ≥ 1.
    replication: usize,
    /// backup manager → replica copies of the histories it backs up
    replicas: HashMap<NodeId, InteractionHistory>,
    /// id source for managers spawned by churn joins
    next_spawned_manager: u64,
    /// optional durability: the global WAL of every accepted submit
    wal: Option<SystemWal>,
}

impl DecentralizedSystem {
    /// Bootstrap the system with the given power nodes as managers.
    /// Duplicate manager ids are tolerated; at least one is required.
    /// Histories are unreplicated — a manager crash loses its slice; use
    /// [`DecentralizedSystem::with_replication`] for crash tolerance.
    pub fn new(
        managers: &[NodeId],
        thresholds: Thresholds,
        method: Method,
        policy: DetectionPolicy,
    ) -> Self {
        Self::with_replication(managers, thresholds, method, policy, 1)
    }

    /// Bootstrap with `replication` total copies of every node's history:
    /// the owning manager's primary plus `replication - 1` backups at the
    /// owner's ring successors, kept in sync on every submit and
    /// re-established after membership changes.
    pub fn with_replication(
        managers: &[NodeId],
        thresholds: Thresholds,
        method: Method,
        policy: DetectionPolicy,
        replication: usize,
    ) -> Self {
        assert!(!managers.is_empty(), "need at least one reputation manager");
        assert!(replication >= 1, "replication factor must be at least 1");
        let mut ring = ChordRing::new();
        let mut key_to_manager = HashMap::new();
        for &m in managers {
            let key = consistent_hash(m.raw(), 64);
            if ring.join_with_key(key) {
                key_to_manager.insert(key.raw(), m);
            }
        }
        DecentralizedSystem {
            thresholds,
            method,
            policy,
            ring,
            key_to_manager,
            histories: HashMap::new(),
            manager_of: HashMap::new(),
            nodes: Vec::new(),
            stats: SystemStats::default(),
            replication,
            replicas: HashMap::new(),
            next_spawned_manager: 0x5000_0000,
            wal: None,
        }
    }

    /// Attach a write-ahead log at `path`: from now on every accepted
    /// [`DecentralizedSystem::submit`] is appended to it before it is
    /// applied, fsync'd per `sync_policy` (under [`SyncPolicy::Group`] the
    /// caller owns the commit points via
    /// [`DecentralizedSystem::wal_sync`]). A crashed manager is then
    /// recovered by replaying the log
    /// ([`DecentralizedSystem::manager_crash`] prefers the disk copy over
    /// replicas whenever it is at least as complete), and a cold restart
    /// can rebuild everything via
    /// [`DecentralizedSystem::recover_from_wal`].
    ///
    /// An existing file at `path` is opened and appended to (its torn tail,
    /// if any, is truncated); otherwise a fresh log is created.
    pub fn enable_durability(
        &mut self,
        path: impl AsRef<Path>,
        sync_policy: SyncPolicy,
    ) -> Result<(), DurabilityError> {
        let path = path.as_ref();
        let wal = if path.exists() { Wal::open_existing(path)?.0 } else { Wal::create(path, 0)? };
        self.wal =
            Some(SystemWal { wal: Arc::new(Mutex::new(wal)), sync_policy, appends_since_sync: 0 });
        Ok(())
    }

    /// Whether a system WAL is attached.
    pub fn durability_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Force any buffered WAL appends to stable storage.
    pub fn wal_sync(&mut self) -> Result<(), DurabilityError> {
        if let Some(d) = self.wal.as_mut() {
            d.wal.lock().expect("system WAL lock poisoned").sync()?;
            d.appends_since_sync = 0;
        }
        Ok(())
    }

    /// Cold-restart recovery: open the WAL at `path` (truncating any torn
    /// tail), re-apply every logged rating through the normal ownership
    /// routing, rebuild the replicas, and keep the log attached for further
    /// appends. Participant nodes must be registered first — the log stores
    /// ratings, not memberships. Returns the number of ratings re-applied.
    ///
    /// Recovery counters are bit-identical to the uncrashed run because the
    /// log *is* the accepted rating stream and counters are a pure fold
    /// over it; only the network-cost stats differ (replay pays no hops).
    pub fn recover_from_wal(
        &mut self,
        path: impl AsRef<Path>,
        sync_policy: SyncPolicy,
    ) -> Result<u64, DurabilityError> {
        let (wal, replay) = Wal::open_existing(path.as_ref())?;
        let mut applied = 0u64;
        for (_, record) in &replay.records {
            let WalRecord::Rating(rating) = record else { continue };
            if rating.is_self_rating() {
                continue;
            }
            let Some(&owner_key) = self.manager_of.get(&rating.ratee) else {
                continue;
            };
            let manager = self.key_to_manager[&owner_key.raw()];
            self.histories.entry(manager).or_default().record(*rating);
            applied += 1;
        }
        self.rebuild_replicas();
        self.wal =
            Some(SystemWal { wal: Arc::new(Mutex::new(wal)), sync_policy, appends_since_sync: 0 });
        Ok(applied)
    }

    /// Replay the attached WAL into a standalone history of every logged
    /// rating — the disk image a crashed manager's slices are carved from.
    /// `None` when durability is off or the log cannot be read back.
    fn replay_wal_history(&self) -> Option<InteractionHistory> {
        let d = self.wal.as_ref()?;
        let bytes = {
            let mut guard = d.wal.lock().expect("system WAL lock poisoned");
            // surface appends still in the writer's encode buffer to the
            // file before reading it back
            guard.flush().ok()?;
            std::fs::read(guard.path()).ok()?
        };
        let replay = replay_bytes(&bytes).ok()?;
        let mut history = InteractionHistory::new();
        for (_, record) in replay.records {
            if let WalRecord::Rating(rating) = record {
                history.record(rating);
            }
        }
        Some(history)
    }

    /// The backup managers for histories owned by the manager at
    /// `owner_key`: the owner's distinct ring successors, up to the
    /// replication factor.
    fn backup_managers(&self, owner_key: Key) -> Vec<NodeId> {
        let mut backups = Vec::new();
        if self.replication <= 1 {
            return backups;
        }
        let mut cur = owner_key;
        for _ in 0..self.replication - 1 {
            cur = self.ring.successor_of(cur);
            if cur == owner_key {
                break; // ring smaller than the replication factor
            }
            backups.push(self.key_to_manager[&cur.raw()]);
        }
        backups
    }

    /// Rebuild every backup copy from the primary histories — called after
    /// any manager membership change, standing in for the copy transfers
    /// that stabilization would drive in a live deployment.
    fn rebuild_replicas(&mut self) {
        self.replicas.clear();
        if self.replication <= 1 {
            return;
        }
        let nodes = self.nodes.clone();
        for node in nodes {
            let owner_key = self.manager_of[&node];
            let owner = self.key_to_manager[&owner_key.raw()];
            let backups = self.backup_managers(owner_key);
            if backups.is_empty() {
                continue;
            }
            // non-destructive copy of the owner's slice about `node`
            let Some(history) = self.histories.get_mut(&owner) else { continue };
            let slice = history.split_off_ratee(node);
            history.merge(&slice);
            if slice.recorded() == 0 {
                continue;
            }
            for b in backups {
                self.replicas.entry(b).or_default().merge(&slice);
                self.stats.replica_messages += 1;
                self.stats.hops += 1;
            }
        }
    }

    /// Register a participant node; its ratings will be managed by the DHT
    /// owner of `consistent_hash(id)`. Idempotent.
    pub fn register(&mut self, node: NodeId) {
        if self.manager_of.contains_key(&node) {
            return;
        }
        let key = self.ring.owner(consistent_hash(node.raw(), 64));
        self.manager_of.insert(node, key);
        let pos = self.nodes.binary_search(&node).unwrap_or_else(|e| e);
        self.nodes.insert(pos, node);
    }

    /// The manager id responsible for `node`, if registered.
    pub fn manager_of(&self, node: NodeId) -> Option<NodeId> {
        self.manager_of.get(&node).map(|k| self.key_to_manager[&k.raw()])
    }

    /// Submit a rating: `Insert(ID_ratee, rating)` routed from the
    /// submitter's gateway (the first manager on the ring). Returns `false`
    /// for self-ratings or unregistered ratees.
    pub fn submit(&mut self, rating: Rating) -> bool {
        if rating.is_self_rating() {
            return false;
        }
        let Some(&owner_key) = self.manager_of.get(&rating.ratee) else {
            return false;
        };
        // write-ahead: the rating is logged before any state changes, so a
        // crash between here and the history update loses nothing
        if let Some(d) = self.wal.as_mut() {
            let mut wal = d.wal.lock().expect("system WAL lock poisoned");
            wal.append(&WalRecord::Rating(rating)).expect("system WAL append failed");
            d.appends_since_sync += 1;
            if d.sync_policy.due(d.appends_since_sync) {
                wal.sync().expect("system WAL fsync failed");
                d.appends_since_sync = 0;
            }
        }
        // route from the gateway to the owner, paying hops
        let gateway = self.ring.members().next().expect("ring non-empty");
        let route =
            Router::new(&self.ring).lookup(gateway, consistent_hash(rating.ratee.raw(), 64));
        debug_assert_eq!(route.owner, owner_key);
        self.stats.inserts += 1;
        self.stats.hops += route.hops as u64;
        let manager = self.key_to_manager[&owner_key.raw()];
        self.histories.entry(manager).or_default().record(rating);
        // keep backup copies in sync: one owner→backup push per replica
        for b in self.backup_managers(owner_key) {
            self.replicas.entry(b).or_default().record(rating);
            self.stats.replica_messages += 1;
            self.stats.hops += 1;
        }
        true
    }

    /// `Lookup(ID_node)`: fetch the node's reputation (signed rating sum
    /// computed by its manager from local data). Unregistered nodes read 0.
    pub fn lookup_reputation(&mut self, node: NodeId) -> i64 {
        self.stats.lookups += 1;
        let Some(&owner_key) = self.manager_of.get(&node) else {
            return 0;
        };
        let gateway = self.ring.members().next().expect("ring non-empty");
        let route = Router::new(&self.ring).lookup(gateway, consistent_hash(node.raw(), 64));
        self.stats.hops += route.hops as u64;
        let manager = self.key_to_manager[&owner_key.raw()];
        self.histories.get(&manager).map_or(0, |h| h.signed_reputation(node))
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// A new power node joins the manager ring; responsibility for (and the
    /// stored histories of) the nodes in its arc migrate from their previous
    /// managers. Returns the number of nodes that changed manager, or `None`
    /// if the manager id collides with an existing one.
    pub fn manager_join(&mut self, manager: NodeId) -> Option<usize> {
        let key = consistent_hash(manager.raw(), 64);
        if !self.ring.join_with_key(key) {
            return None;
        }
        self.key_to_manager.insert(key.raw(), manager);
        let moved = self.rebalance();
        self.rebuild_replicas();
        Some(moved)
    }

    /// A power node leaves gracefully; its responsible nodes (and their
    /// histories) move to their new owners. Returns the number of nodes that
    /// changed manager, or `None` if the id was not a manager — or if it is
    /// the last one (the system refuses to lose all its data).
    pub fn manager_leave(&mut self, manager: NodeId) -> Option<usize> {
        let key = consistent_hash(manager.raw(), 64);
        if !self.ring.contains(key) || self.ring.len() == 1 {
            return None;
        }
        self.ring.leave(key);
        self.key_to_manager.remove(&key.raw());
        let departed = self.histories.remove(&manager).unwrap_or_default();
        let migrated = self.rebalance();
        // the departed manager's leftover data (anything rebalance did not
        // already move node-by-node) merges into the new owners
        let mut remaining = departed;
        let ratees: Vec<NodeId> = remaining.ratees().collect();
        for ratee in ratees {
            let slice = remaining.split_off_ratee(ratee);
            if let Some(&owner_key) = self.manager_of.get(&ratee) {
                let owner = self.key_to_manager[&owner_key.raw()];
                self.histories.entry(owner).or_default().merge(&slice);
            }
        }
        self.rebuild_replicas();
        Some(migrated)
    }

    /// A power node crashes **abruptly**: no handoff — its primary slices
    /// and replica copies vanish. Each orphaned node's history is recovered
    /// from the best surviving backup when one exists (counted in
    /// `recovered_nodes`), otherwise it is lost (`lost_nodes`). Returns the
    /// number of nodes whose manager changed, or `None` if the id was not a
    /// manager — or is the last one.
    pub fn manager_crash(&mut self, manager: NodeId) -> Option<usize> {
        let key = consistent_hash(manager.raw(), 64);
        if !self.ring.contains(key) || self.ring.len() == 1 {
            return None;
        }
        // Everything the crashed manager held is gone.
        let crashed_primary = self.histories.remove(&manager).unwrap_or_default();
        self.replicas.remove(&manager);
        let mut orphaned: Vec<NodeId> = crashed_primary.ratees().collect();
        orphaned.sort_unstable();
        self.ring.leave(key);
        self.key_to_manager.remove(&key.raw());
        // Reassign ownership; slices between survivors move as usual, the
        // crashed manager's are skipped (its data no longer exists).
        let migrated = self.rebalance();
        // Recover each orphaned node's slice, disk first: replaying the
        // system WAL reconstructs the full accepted rating stream, so the
        // disk copy is bit-identical to the uncrashed counters. Replicas
        // are the degraded fallback — used only when the disk copy is
        // absent or less complete (e.g. the WAL was attached late).
        let mut disk = self.replay_wal_history();
        let mut backup_managers: Vec<NodeId> = self.replicas.keys().copied().collect();
        backup_managers.sort_unstable();
        for node in orphaned {
            let best = backup_managers
                .iter()
                .map(|&m| (self.replicas[&m].ratings_for(node), m))
                .filter(|&(count, _)| count > 0)
                .max_by_key(|&(count, m)| (count, std::cmp::Reverse(m)));
            let disk_count = disk.as_ref().map_or(0, |h| h.ratings_for(node));
            if disk_count > 0 && disk_count >= best.map_or(0, |(count, _)| count) {
                let slice = disk.as_mut().expect("disk history present").split_off_ratee(node);
                let new_owner = self.key_to_manager[&self.manager_of[&node].raw()];
                self.histories.entry(new_owner).or_default().merge(&slice);
                self.stats.disk_recovered_nodes += 1;
                continue;
            }
            let Some((_, source)) = best else {
                self.stats.lost_nodes += 1;
                continue;
            };
            let slice = match self.replicas.get_mut(&source) {
                Some(store) => {
                    let slice = store.split_off_ratee(node);
                    store.merge(&slice); // the backup keeps its copy
                    slice
                }
                None => continue,
            };
            let new_owner = self.key_to_manager[&self.manager_of[&node].raw()];
            self.histories.entry(new_owner).or_default().merge(&slice);
            self.stats.recovered_nodes += 1;
            self.stats.replica_messages += 1; // backup → new owner transfer
            self.stats.hops += 1;
        }
        self.rebuild_replicas();
        Some(migrated)
    }

    /// Apply one period of a churn schedule: crash `crashes_per_period`
    /// random managers (never the last one) and join `joins_per_period`
    /// fresh ones. Victim selection is deterministic in `(schedule.seed,
    /// period)`. Returns `(crashed, joined)` counts.
    pub fn apply_churn(&mut self, schedule: &ChurnSchedule, period: u64) -> (usize, usize) {
        let mut rng = schedule.victim_rng(period);
        let mut crashed = 0;
        for _ in 0..schedule.crashes_per_period {
            if self.ring.len() <= 1 {
                break;
            }
            let mut candidates: Vec<NodeId> = self.key_to_manager.values().copied().collect();
            candidates.sort_unstable();
            let victim = candidates[rng.below(candidates.len() as u64) as usize];
            if self.manager_crash(victim).is_some() {
                crashed += 1;
            }
        }
        let mut joined = 0;
        for _ in 0..schedule.joins_per_period {
            let id = NodeId(self.next_spawned_manager);
            self.next_spawned_manager += 1;
            if self.manager_join(id).is_some() {
                joined += 1;
            }
        }
        (crashed, joined)
    }

    /// Recompute every node's owner after a ring change, migrating histories
    /// node by node. Returns the number of nodes whose manager changed.
    fn rebalance(&mut self) -> usize {
        let mut moved = 0;
        let nodes = self.nodes.clone();
        for node in nodes {
            let new_key = self.ring.owner(consistent_hash(node.raw(), 64));
            let old_key = self.manager_of[&node];
            if new_key == old_key {
                continue;
            }
            moved += 1;
            self.manager_of.insert(node, new_key);
            // the old manager may be gone (leave case) — then its data is
            // handled by the caller; otherwise hand the slice over now
            if let Some(&old_manager) = self.key_to_manager.get(&old_key.raw()) {
                let slice = self
                    .histories
                    .get_mut(&old_manager)
                    .map(|h| h.split_off_ratee(node))
                    .unwrap_or_default();
                let new_manager = self.key_to_manager[&new_key.raw()];
                self.histories.entry(new_manager).or_default().merge(&slice);
            }
        }
        moved
    }

    /// Run the collusion detection round across all managers (the paper's
    /// periodic check), returning the merged report.
    ///
    /// Each manager freezes its local slice into an owned
    /// [`DetectionSnapshot`] once per round — no history clones, no
    /// per-pair reputation-map copies — and both the local forward walk
    /// and the partner-side reverse verification run on these frozen
    /// views. A partner that has never seen the probing rater answers
    /// from zero counters, exactly like the former hash-map lookup.
    ///
    /// Equivalent to `detect_robust(&FaultPlan::none()).report` — by the
    /// zero-draw contract of [`FaultPlan::none`] the accounting (hops,
    /// messages, meter) is bit-identical to a fault-oblivious round.
    pub fn detect(&mut self) -> DetectionReport {
        self.detect_robust(&FaultPlan::none()).report
    }

    /// Run one detection round with fault injection: every cross-manager
    /// confirmation exchange passes through the plan's lossy network with
    /// bounded retries and exponential backoff. Pairs whose exchange
    /// exhausts the retry budget are reported as *unconfirmed* (forward
    /// evidence only) instead of being silently dropped.
    ///
    /// The plan's churn schedule is **not** applied here — churn happens
    /// between rounds via [`DecentralizedSystem::apply_churn`], which the
    /// simulator drives once per detection period.
    pub fn detect_robust(&mut self, plan: &FaultPlan) -> RobustReport {
        let mut session = FaultSession::new(plan);
        let mut unconfirmed: Vec<SuspectPair> = Vec::new();
        let meter = CostMeter::new();
        // Group responsible nodes per manager; `self.nodes` is ascending,
        // so each manager's list comes out ascending too.
        let mut manager_nodes: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &node in &self.nodes {
            let manager = self.key_to_manager[&self.manager_of[&node].raw()];
            manager_nodes.entry(manager).or_default().push(node);
        }
        let mut manager_list: Vec<NodeId> = manager_nodes.keys().copied().collect();
        manager_list.sort_unstable();
        let manager_pos: HashMap<NodeId, usize> =
            manager_list.iter().enumerate().map(|(k, &m)| (m, k)).collect();

        // Freeze each manager's local slice; reputations are the signed
        // sums each manager computes from its own data.
        let empty = InteractionHistory::new();
        let snaps: Vec<DetectionSnapshot> = manager_list
            .iter()
            .map(|m| {
                let history = self.histories.get(m).unwrap_or(&empty);
                DetectionSnapshot::build(history, &manager_nodes[m])
            })
            .collect();
        let inputs: Vec<SnapshotInput<'_>> = manager_list
            .iter()
            .zip(&snaps)
            .map(|(m, s)| SnapshotInput::from_signed(s, &manager_nodes[m]))
            .collect();
        let mut caches: Vec<Vec<Option<(u64, i64)>>> =
            snaps.iter().map(|s| vec![None; s.n()]).collect();

        let router_ring = self.ring.clone();
        let router = Router::new(&router_ring);
        let mut pairs: Vec<SuspectPair> = Vec::new();
        // indices are per-snapshot, so the cross-manager marking stays on ids
        let mut checked: HashSet<(NodeId, NodeId)> = HashSet::new();

        for (k, &manager) in manager_list.iter().enumerate() {
            let snap = &snaps[k];
            let input = &inputs[k];
            let nodes = &manager_nodes[&manager];
            let my_key = self.manager_of[&nodes[0]];
            for &i in nodes {
                let i_idx = snap.index(i).expect("responsible node is interned");
                if !self.thresholds.is_high_reputed(input.reputation_of_idx(i_idx)) {
                    continue;
                }
                let (cols, _) = snap.row(i_idx);
                for &j_idx in cols {
                    let j = snap.node_id(j_idx);
                    meter.element_check();
                    let key = if i < j { (i, j) } else { (j, i) };
                    if checked.contains(&key) {
                        continue;
                    }
                    let Some(ev_fwd) =
                        self.direction_snap(snap, i_idx, Some(j_idx), &meter, &mut caches[k])
                    else {
                        continue;
                    };
                    checked.insert(key);
                    // locate the partner's manager
                    let Some(&partner_key) = self.manager_of.get(&j) else { continue };
                    let partner_manager = self.key_to_manager[&partner_key.raw()];
                    if partner_key != my_key {
                        // each (re)transmission re-routes to the partner
                        let route = router.lookup(my_key, consistent_hash(j.raw(), 64));
                        let exchange = session.exchange();
                        self.stats.hops += route.hops as u64 * exchange.attempts as u64;
                        self.stats.detection_messages += exchange.messages;
                        for _ in 0..exchange.messages {
                            meter.message();
                        }
                        if !exchange.delivered {
                            unconfirmed.push(SuspectPair::new(j, i, Some(ev_fwd), None));
                            continue;
                        }
                    }
                    // partner-side verification on the partner's OWN slice
                    let Some(&p_pos) = manager_pos.get(&partner_manager) else {
                        continue;
                    };
                    let p_snap = &snaps[p_pos];
                    let p_j = p_snap.index(j).expect("registered node is interned");
                    if !self.thresholds.is_high_reputed(inputs[p_pos].reputation_of_idx(p_j)) {
                        continue;
                    }
                    let ev_rev = self.direction_snap(
                        p_snap,
                        p_j,
                        p_snap.index(i),
                        &meter,
                        &mut caches[p_pos],
                    );
                    if self.policy.require_mutual {
                        let Some(rev) = ev_rev else { continue };
                        pairs.push(SuspectPair::new(j, i, Some(ev_fwd), Some(rev)));
                    } else {
                        pairs.push(SuspectPair::new(j, i, Some(ev_fwd), ev_rev));
                    }
                }
            }
        }
        RobustReport {
            report: DetectionReport::new(pairs, meter.snapshot()),
            unconfirmed,
            fault: session.stats(),
        }
    }

    fn direction_snap(
        &self,
        snap: &DetectionSnapshot,
        ratee: u32,
        rater: Option<u32>,
        meter: &CostMeter,
        cache: &mut [Option<(u64, i64)>],
    ) -> Option<DirectionEvidence> {
        match self.method {
            Method::Basic => BasicDetector::with_policy(self.thresholds, self.policy)
                .check_direction_snap(snap, ratee, rater, meter),
            Method::Optimized => OptimizedDetector::with_policy(self.thresholds, self.policy)
                .direction_cached(snap, ratee, rater, meter, cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DetectionInput;
    use collusion_reputation::id::SimTime;

    fn thresholds() -> Thresholds {
        Thresholds::new(1.0, 20, 0.8, 0.2)
    }

    fn ratings() -> Vec<Rating> {
        let mut out = Vec::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        for (a, b) in [(1u64, 2u64), (20, 21)] {
            for _ in 0..30 {
                out.push(Rating::positive(NodeId(a), NodeId(b), tick()));
                out.push(Rating::positive(NodeId(b), NodeId(a), tick()));
            }
            for k in 0..5 {
                out.push(Rating::negative(NodeId(40 + k), NodeId(a), tick()));
                out.push(Rating::negative(NodeId(40 + k), NodeId(b), tick()));
            }
        }
        for k in 0..5u64 {
            for l in 0..5u64 {
                if k != l {
                    out.push(Rating::positive(NodeId(40 + k), NodeId(40 + l), tick()));
                }
            }
        }
        out
    }

    fn build_system(managers: u64) -> DecentralizedSystem {
        let manager_ids: Vec<NodeId> = (1000..1000 + managers).map(NodeId).collect();
        let mut sys = DecentralizedSystem::new(
            &manager_ids,
            thresholds(),
            Method::Optimized,
            DetectionPolicy::STRICT,
        );
        for id in (1..=2).chain(20..=21).chain(40..45) {
            sys.register(NodeId(id));
        }
        for r in ratings() {
            sys.submit(r);
        }
        sys
    }

    #[test]
    fn partitioned_detection_matches_centralized() {
        let mut h = InteractionHistory::new();
        for r in ratings() {
            h.record(r);
        }
        let nodes: Vec<NodeId> = (1..=2).chain(20..=21).chain(40..45).map(NodeId).collect();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let central = OptimizedDetector::new(thresholds()).detect(&input);
        for managers in [1u64, 3, 8, 32] {
            let mut sys = build_system(managers);
            let report = sys.detect();
            assert_eq!(
                report.pair_ids(),
                central.pair_ids(),
                "{managers} managers diverged from centralized"
            );
        }
    }

    #[test]
    fn lookups_agree_with_submitted_ratings() {
        let mut sys = build_system(8);
        // n1: +30 from partner, −5 community = +25
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(40)), 4); // praised by 4 peers
        assert_eq!(sys.lookup_reputation(NodeId(999)), 0); // unregistered
        let stats = sys.stats();
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.inserts, ratings().len() as u64);
    }

    #[test]
    fn self_and_unregistered_ratings_rejected() {
        let mut sys = build_system(4);
        assert!(!sys.submit(Rating::positive(NodeId(1), NodeId(1), SimTime(0))));
        assert!(!sys.submit(Rating::positive(NodeId(1), NodeId(777), SimTime(0))));
    }

    #[test]
    fn cross_manager_detection_costs_messages() {
        let mut sys = build_system(64);
        let report = sys.detect();
        assert_eq!(report.pairs.len(), 2);
        let stats = sys.stats();
        assert!(stats.detection_messages > 0, "expected cross-manager confirmations");
        assert_eq!(stats.detection_messages % 2, 0);
        assert!(stats.hops > 0);
    }

    #[test]
    fn single_manager_detects_without_messages() {
        let mut sys = build_system(1);
        let report = sys.detect();
        assert_eq!(report.pairs.len(), 2);
        assert_eq!(sys.stats().detection_messages, 0);
    }

    #[test]
    fn registration_is_idempotent_and_sorted() {
        let mut sys = DecentralizedSystem::new(
            &[NodeId(1000)],
            thresholds(),
            Method::Basic,
            DetectionPolicy::STRICT,
        );
        sys.register(NodeId(5));
        sys.register(NodeId(2));
        sys.register(NodeId(5));
        assert_eq!(sys.nodes, vec![NodeId(2), NodeId(5)]);
        assert_eq!(sys.manager_of(NodeId(5)), Some(NodeId(1000)));
        assert_eq!(sys.manager_of(NodeId(9)), None);
    }

    #[test]
    fn manager_churn_preserves_data_and_verdicts() {
        let mut sys = build_system(6);
        let baseline = {
            let mut reference = build_system(6);
            reference.detect().pair_ids()
        };
        // joins
        assert!(sys.manager_join(NodeId(2000)).is_some());
        assert!(sys.manager_join(NodeId(2001)).is_some());
        assert!(sys.manager_join(NodeId(2000)).is_none(), "duplicate join rejected");
        // leaves
        assert!(sys.manager_leave(NodeId(1000)).is_some());
        assert!(sys.manager_leave(NodeId(1000)).is_none(), "double leave rejected");
        // reputations unchanged by churn
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(40)), 4);
        // detection verdicts unchanged by churn
        assert_eq!(sys.detect().pair_ids(), baseline);
    }

    #[test]
    fn last_manager_cannot_leave() {
        let mut sys = build_system(1);
        let only = sys.manager_of(NodeId(1)).unwrap();
        assert!(sys.manager_leave(only).is_none());
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25, "data survived");
    }

    #[test]
    fn heavy_churn_keeps_every_rating() {
        let mut sys = build_system(4);
        let expected: u64 = ratings().len() as u64;
        for k in 0..10u64 {
            sys.manager_join(NodeId(3000 + k));
        }
        for k in 0..3u64 {
            sys.manager_leave(NodeId(1000 + k));
        }
        // total recorded ratings across all manager histories is conserved
        let total: u64 = sys.histories.values().map(|h| h.recorded()).sum();
        assert_eq!(total, expected);
        // and every node's reputation is still readable and correct
        assert_eq!(sys.lookup_reputation(NodeId(20)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(44)), 4);
    }

    #[test]
    fn basic_method_agrees_with_optimized_in_system() {
        let mut opt = build_system(8);
        let mut basic = build_system(8);
        basic.method = Method::Basic;
        assert_eq!(basic.detect().pair_ids(), opt.detect().pair_ids());
    }

    fn build_replicated_system(managers: u64, replication: usize) -> DecentralizedSystem {
        let manager_ids: Vec<NodeId> = (1000..1000 + managers).map(NodeId).collect();
        let mut sys = DecentralizedSystem::with_replication(
            &manager_ids,
            thresholds(),
            Method::Optimized,
            DetectionPolicy::STRICT,
            replication,
        );
        for id in (1..=2).chain(20..=21).chain(40..45) {
            sys.register(NodeId(id));
        }
        for r in ratings() {
            sys.submit(r);
        }
        sys
    }

    #[test]
    fn replicated_system_survives_manager_crashes() {
        let baseline = build_system(8).detect().pair_ids();
        let mut sys = build_replicated_system(8, 3);
        // crash three managers in a row — replication factor 3 guarantees a
        // surviving copy of every slice after each single crash + rebuild
        for id in [1000u64, 1003, 1006] {
            assert!(sys.manager_crash(NodeId(id)).is_some());
        }
        assert_eq!(sys.stats().lost_nodes, 0, "no slice may be lost at r=3");
        // every reputation and every verdict survives
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(40)), 4);
        assert_eq!(sys.detect().pair_ids(), baseline);
    }

    #[test]
    fn unreplicated_crash_loses_data_but_system_degrades_gracefully() {
        let mut sys = build_system(8); // replication = 1
        let held_before: u64 = sys.histories.values().map(|h| h.recorded()).sum();
        // crash every manager that holds data except the last survivor
        let mut crashed_any_data = false;
        for id in 1000..1007u64 {
            let m = NodeId(id);
            let held = sys.histories.get(&m).map_or(0, |h| h.recorded());
            if sys.manager_crash(m).is_some() && held > 0 {
                crashed_any_data = true;
            }
        }
        let held_after: u64 = sys.histories.values().map(|h| h.recorded()).sum();
        assert!(crashed_any_data, "test needs at least one data-bearing crash");
        assert!(held_after < held_before, "unreplicated crashes must lose ratings");
        assert!(sys.stats().lost_nodes > 0);
        // the survivor still answers lookups and runs detection without panic
        let _ = sys.lookup_reputation(NodeId(1));
        let _ = sys.detect();
    }

    #[test]
    fn crash_of_non_member_or_last_manager_refused() {
        let mut sys = build_system(1);
        let only = sys.manager_of(NodeId(1)).unwrap();
        assert!(sys.manager_crash(only).is_none(), "last manager must not crash away the data");
        assert!(sys.manager_crash(NodeId(77777)).is_none());
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25);
    }

    #[test]
    fn churn_application_is_deterministic() {
        let schedule = ChurnSchedule { crashes_per_period: 1, joins_per_period: 1, seed: 11 };
        let run = |mut sys: DecentralizedSystem| {
            let mut counts = Vec::new();
            for period in 0..4 {
                counts.push(sys.apply_churn(&schedule, period));
            }
            let pairs = sys.detect().pair_ids();
            (counts, pairs, sys.stats().recovered_nodes, sys.stats().lost_nodes)
        };
        let a = run(build_replicated_system(8, 3));
        let b = run(build_replicated_system(8, 3));
        assert_eq!(a, b, "same churn schedule must replay identically");
    }

    #[test]
    fn unreplicated_crash_recovers_from_wal() {
        let baseline = build_system(8).detect().pair_ids();
        let dir = crate::durability::scratch_dir("sys-unreplicated");
        // unreplicated system, but with a WAL attached before any submit
        let manager_ids: Vec<NodeId> = (1000..1008u64).map(NodeId).collect();
        let mut logged = DecentralizedSystem::new(
            &manager_ids,
            thresholds(),
            Method::Optimized,
            DetectionPolicy::STRICT,
        );
        logged.enable_durability(dir.join("logged.wal"), SyncPolicy::EveryK(16)).unwrap();
        for id in (1..=2).chain(20..=21).chain(40..45) {
            logged.register(NodeId(id));
        }
        for r in ratings() {
            logged.submit(r);
        }
        // crash every data-bearing manager except the survivor; without the
        // WAL this loses slices (see unreplicated_crash_loses_data test)
        for id in 1000..1007u64 {
            logged.manager_crash(NodeId(id));
        }
        assert_eq!(logged.stats().lost_nodes, 0, "WAL must cover every orphaned slice");
        assert!(logged.stats().disk_recovered_nodes > 0);
        assert_eq!(logged.stats().recovered_nodes, 0, "no replicas to recover from");
        assert_eq!(logged.lookup_reputation(NodeId(1)), 25);
        assert_eq!(logged.lookup_reputation(NodeId(40)), 4);
        assert_eq!(logged.detect().pair_ids(), baseline);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_recovery_preferred_over_replicas_and_identical() {
        let baseline = build_system(8).detect().pair_ids();
        let dir = crate::durability::scratch_dir("sys-disk-first");
        // replicated AND logged: the disk copy is always at least as
        // complete as any replica, so it must win every recovery
        let manager_ids: Vec<NodeId> = (1000..1008u64).map(NodeId).collect();
        let mut sys = DecentralizedSystem::with_replication(
            &manager_ids,
            thresholds(),
            Method::Optimized,
            DetectionPolicy::STRICT,
            3,
        );
        sys.enable_durability(dir.join("system.wal"), SyncPolicy::EveryK(16)).unwrap();
        for id in (1..=2).chain(20..=21).chain(40..45) {
            sys.register(NodeId(id));
        }
        for r in ratings() {
            sys.submit(r);
        }
        let mut replica_only = build_replicated_system(8, 3);
        for id in [1000u64, 1003, 1006] {
            assert!(sys.manager_crash(NodeId(id)).is_some());
            assert!(replica_only.manager_crash(NodeId(id)).is_some());
        }
        let stats = sys.stats();
        assert!(stats.disk_recovered_nodes > 0);
        assert_eq!(stats.recovered_nodes, 0, "disk must preempt every replica recovery");
        assert_eq!(stats.lost_nodes, 0);
        // identical verdicts to both the replica-rebuilt world and baseline
        assert_eq!(sys.detect().pair_ids(), baseline);
        assert_eq!(replica_only.detect().pair_ids(), baseline);
        // and bit-identical counters: every reputation matches
        for id in (1..=2).chain(20..=21).chain(40..45) {
            assert_eq!(
                sys.lookup_reputation(NodeId(id)),
                replica_only.lookup_reputation(NodeId(id)),
                "node {id} counters diverged between disk and replica recovery"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_restart_replays_the_wal_bit_identically() {
        let dir = crate::durability::scratch_dir("sys-cold-restart");
        let wal_path = dir.join("system.wal");
        let baseline = {
            let mut sys = build_replicated_system(8, 1);
            sys.enable_durability(&wal_path, SyncPolicy::EveryK(16)).unwrap();
            for r in ratings() {
                sys.submit(r);
            }
            sys.wal_sync().unwrap();
            sys.detect().pair_ids()
        }; // process "dies" here; only the WAL file survives
        let manager_ids: Vec<NodeId> = (1000..1008u64).map(NodeId).collect();
        let mut restarted = DecentralizedSystem::new(
            &manager_ids,
            thresholds(),
            Method::Optimized,
            DetectionPolicy::STRICT,
        );
        for id in (1..=2).chain(20..=21).chain(40..45) {
            restarted.register(NodeId(id));
        }
        let replayed = restarted.recover_from_wal(&wal_path, SyncPolicy::EveryK(16)).unwrap();
        assert_eq!(replayed, ratings().len() as u64);
        assert!(restarted.durability_enabled(), "log stays attached after recovery");
        assert_eq!(restarted.lookup_reputation(NodeId(1)), 25);
        assert_eq!(restarted.detect().pair_ids(), baseline);
        // the reopened log keeps accepting submits where it left off
        assert!(restarted.submit(Rating::positive(NodeId(40), NodeId(1), SimTime(99_999))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_robust_none_plan_matches_detect_exactly() {
        let mut plain = build_system(16);
        let mut robust = build_system(16);
        let expected = plain.detect();
        let out = robust.detect_robust(&FaultPlan::none());
        assert_eq!(out.report.pair_ids(), expected.pair_ids());
        assert_eq!(out.report.cost, expected.cost, "meter must be bit-identical");
        assert!(out.unconfirmed.is_empty());
        assert_eq!(out.fault.completeness(), 1.0);
        assert_eq!(plain.stats(), robust.stats(), "hops/messages must match");
    }

    #[test]
    fn retries_keep_system_verdicts_complete_at_moderate_drop() {
        let baseline = build_system(16).detect().pair_ids();
        for seed in 0..10u64 {
            let mut sys = build_system(16);
            let out = sys.detect_robust(&FaultPlan::with_drop(0.1, seed));
            assert_eq!(
                out.report.pair_ids(),
                baseline,
                "seed {seed}: 10% drop with default retries must confirm every pair"
            );
            assert!(out.unconfirmed.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn heavy_drop_reports_unconfirmed_instead_of_dropping() {
        let baseline = build_system(16).detect().pair_ids();
        let mut saw_unconfirmed = false;
        for seed in 0..12u64 {
            let mut sys = build_system(16);
            let out = sys.detect_robust(&FaultPlan::with_drop(0.6, seed).retries(0));
            let confirmed = out.report.pair_ids();
            for pair in &confirmed {
                assert!(baseline.contains(pair), "seed {seed}: confirmed ⊆ fault-free set");
            }
            let mut accounted = confirmed.clone();
            accounted.extend(out.unconfirmed.iter().map(|p| p.ids()));
            for pair in &baseline {
                assert!(
                    accounted.contains(pair),
                    "seed {seed}: fault-free pair {pair:?} vanished instead of degrading"
                );
            }
            saw_unconfirmed |= !out.unconfirmed.is_empty();
        }
        assert!(saw_unconfirmed, "60% drop without retries must strand some pairs");
    }
}
