//! A complete decentralized reputation system with collusion detection —
//! §IV.A's architecture end to end.
//!
//! Unlike [`crate::decentralized::DecentralizedDetector`], which evaluates
//! the protocol against a shared view (useful for equivalence proofs), a
//! [`DecentralizedSystem`] keeps the managers' data **physically
//! partitioned**:
//!
//! * managers (the "power nodes") form a Chord ring;
//! * a rating about `n_i` is routed with `Insert(ID_i, rating)` from the
//!   submitter's gateway manager to the DHT owner of `ID_i`, paying real
//!   routing hops;
//! * each manager holds only the interaction history *about its own
//!   responsible nodes* and computes their reputations from that data
//!   alone;
//! * `Lookup(ID_i)` fetches a reputation across the ring (hop-counted);
//! * detection runs per manager on its local slice, with request/response
//!   messages to the partner's manager for the cross-manager reverse check
//!   — exactly the paper's message flow.
//!
//! The end-to-end tests assert the partitioned system reaches the same
//! verdicts as a centralized manager fed the identical rating stream.

use crate::basic::BasicDetector;
use crate::cost::CostMeter;
use crate::decentralized::Method;
use crate::input::SnapshotInput;
use crate::model::{DirectionEvidence, SuspectPair};
use crate::optimized::OptimizedDetector;
use crate::policy::DetectionPolicy;
use crate::report::DetectionReport;
use collusion_dht::hash::consistent_hash;
use collusion_dht::id::Key;
use collusion_dht::ring::ChordRing;
use collusion_dht::routing::Router;
use collusion_reputation::history::InteractionHistory;
use collusion_reputation::id::NodeId;
use collusion_reputation::rating::Rating;
use collusion_reputation::snapshot::DetectionSnapshot;
use collusion_reputation::thresholds::Thresholds;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Cumulative network-cost counters of a running system.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// `Insert` operations (one per submitted rating).
    pub inserts: u64,
    /// `Lookup` operations (reputation queries).
    pub lookups: u64,
    /// Detection confirmation messages (requests + responses).
    pub detection_messages: u64,
    /// Total Chord routing hops across all operations.
    pub hops: u64,
}

/// The §IV.A decentralized reputation system.
#[derive(Clone, Debug)]
pub struct DecentralizedSystem {
    thresholds: Thresholds,
    method: Method,
    policy: DetectionPolicy,
    ring: ChordRing,
    key_to_manager: HashMap<u64, NodeId>,
    /// manager → interaction history about its responsible nodes
    histories: HashMap<NodeId, InteractionHistory>,
    /// node → owning manager key (cached consistent-hash ownership)
    manager_of: HashMap<NodeId, Key>,
    /// registered participant nodes, ascending
    nodes: Vec<NodeId>,
    stats: SystemStats,
}

impl DecentralizedSystem {
    /// Bootstrap the system with the given power nodes as managers.
    /// Duplicate manager ids are tolerated; at least one is required.
    pub fn new(managers: &[NodeId], thresholds: Thresholds, method: Method, policy: DetectionPolicy) -> Self {
        assert!(!managers.is_empty(), "need at least one reputation manager");
        let mut ring = ChordRing::new();
        let mut key_to_manager = HashMap::new();
        for &m in managers {
            let key = consistent_hash(m.raw(), 64);
            if ring.join_with_key(key) {
                key_to_manager.insert(key.raw(), m);
            }
        }
        DecentralizedSystem {
            thresholds,
            method,
            policy,
            ring,
            key_to_manager,
            histories: HashMap::new(),
            manager_of: HashMap::new(),
            nodes: Vec::new(),
            stats: SystemStats::default(),
        }
    }

    /// Register a participant node; its ratings will be managed by the DHT
    /// owner of `consistent_hash(id)`. Idempotent.
    pub fn register(&mut self, node: NodeId) {
        if self.manager_of.contains_key(&node) {
            return;
        }
        let key = self.ring.owner(consistent_hash(node.raw(), 64));
        self.manager_of.insert(node, key);
        let pos = self.nodes.binary_search(&node).unwrap_or_else(|e| e);
        self.nodes.insert(pos, node);
    }

    /// The manager id responsible for `node`, if registered.
    pub fn manager_of(&self, node: NodeId) -> Option<NodeId> {
        self.manager_of.get(&node).map(|k| self.key_to_manager[&k.raw()])
    }

    /// Submit a rating: `Insert(ID_ratee, rating)` routed from the
    /// submitter's gateway (the first manager on the ring). Returns `false`
    /// for self-ratings or unregistered ratees.
    pub fn submit(&mut self, rating: Rating) -> bool {
        if rating.is_self_rating() {
            return false;
        }
        let Some(&owner_key) = self.manager_of.get(&rating.ratee) else {
            return false;
        };
        // route from the gateway to the owner, paying hops
        let gateway = self.ring.members().next().expect("ring non-empty");
        let route = Router::new(&self.ring).lookup(gateway, consistent_hash(rating.ratee.raw(), 64));
        debug_assert_eq!(route.owner, owner_key);
        self.stats.inserts += 1;
        self.stats.hops += route.hops as u64;
        let manager = self.key_to_manager[&owner_key.raw()];
        self.histories.entry(manager).or_default().record(rating);
        true
    }

    /// `Lookup(ID_node)`: fetch the node's reputation (signed rating sum
    /// computed by its manager from local data). Unregistered nodes read 0.
    pub fn lookup_reputation(&mut self, node: NodeId) -> i64 {
        self.stats.lookups += 1;
        let Some(&owner_key) = self.manager_of.get(&node) else {
            return 0;
        };
        let gateway = self.ring.members().next().expect("ring non-empty");
        let route = Router::new(&self.ring).lookup(gateway, consistent_hash(node.raw(), 64));
        self.stats.hops += route.hops as u64;
        let manager = self.key_to_manager[&owner_key.raw()];
        self.histories.get(&manager).map_or(0, |h| h.signed_reputation(node))
    }

    /// Cumulative network statistics.
    pub fn stats(&self) -> SystemStats {
        self.stats
    }

    /// A new power node joins the manager ring; responsibility for (and the
    /// stored histories of) the nodes in its arc migrate from their previous
    /// managers. Returns the number of nodes that changed manager, or `None`
    /// if the manager id collides with an existing one.
    pub fn manager_join(&mut self, manager: NodeId) -> Option<usize> {
        let key = consistent_hash(manager.raw(), 64);
        if !self.ring.join_with_key(key) {
            return None;
        }
        self.key_to_manager.insert(key.raw(), manager);
        Some(self.rebalance())
    }

    /// A power node leaves gracefully; its responsible nodes (and their
    /// histories) move to their new owners. Returns the number of nodes that
    /// changed manager, or `None` if the id was not a manager — or if it is
    /// the last one (the system refuses to lose all its data).
    pub fn manager_leave(&mut self, manager: NodeId) -> Option<usize> {
        let key = consistent_hash(manager.raw(), 64);
        if !self.ring.contains(key) || self.ring.len() == 1 {
            return None;
        }
        self.ring.leave(key);
        self.key_to_manager.remove(&key.raw());
        let departed = self.histories.remove(&manager).unwrap_or_default();
        let migrated = self.rebalance();
        // the departed manager's leftover data (anything rebalance did not
        // already move node-by-node) merges into the new owners
        let mut remaining = departed;
        let ratees: Vec<NodeId> = remaining.ratees().collect();
        for ratee in ratees {
            let slice = remaining.split_off_ratee(ratee);
            if let Some(&owner_key) = self.manager_of.get(&ratee) {
                let owner = self.key_to_manager[&owner_key.raw()];
                self.histories.entry(owner).or_default().merge(&slice);
            }
        }
        Some(migrated)
    }

    /// Recompute every node's owner after a ring change, migrating histories
    /// node by node. Returns the number of nodes whose manager changed.
    fn rebalance(&mut self) -> usize {
        let mut moved = 0;
        let nodes = self.nodes.clone();
        for node in nodes {
            let new_key = self.ring.owner(consistent_hash(node.raw(), 64));
            let old_key = self.manager_of[&node];
            if new_key == old_key {
                continue;
            }
            moved += 1;
            self.manager_of.insert(node, new_key);
            // the old manager may be gone (leave case) — then its data is
            // handled by the caller; otherwise hand the slice over now
            if let Some(&old_manager) = self.key_to_manager.get(&old_key.raw()) {
                let slice = self
                    .histories
                    .get_mut(&old_manager)
                    .map(|h| h.split_off_ratee(node))
                    .unwrap_or_default();
                let new_manager = self.key_to_manager[&new_key.raw()];
                self.histories.entry(new_manager).or_default().merge(&slice);
            }
        }
        moved
    }

    /// Run the collusion detection round across all managers (the paper's
    /// periodic check), returning the merged report.
    ///
    /// Each manager freezes its local slice into an owned
    /// [`DetectionSnapshot`] once per round — no history clones, no
    /// per-pair reputation-map copies — and both the local forward walk
    /// and the partner-side reverse verification run on these frozen
    /// views. A partner that has never seen the probing rater answers
    /// from zero counters, exactly like the former hash-map lookup.
    pub fn detect(&mut self) -> DetectionReport {
        let meter = CostMeter::new();
        // Group responsible nodes per manager; `self.nodes` is ascending,
        // so each manager's list comes out ascending too.
        let mut manager_nodes: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &node in &self.nodes {
            let manager = self.key_to_manager[&self.manager_of[&node].raw()];
            manager_nodes.entry(manager).or_default().push(node);
        }
        let mut manager_list: Vec<NodeId> = manager_nodes.keys().copied().collect();
        manager_list.sort_unstable();
        let manager_pos: HashMap<NodeId, usize> =
            manager_list.iter().enumerate().map(|(k, &m)| (m, k)).collect();

        // Freeze each manager's local slice; reputations are the signed
        // sums each manager computes from its own data.
        let empty = InteractionHistory::new();
        let snaps: Vec<DetectionSnapshot> = manager_list
            .iter()
            .map(|m| {
                let history = self.histories.get(m).unwrap_or(&empty);
                DetectionSnapshot::build(history, &manager_nodes[m])
            })
            .collect();
        let inputs: Vec<SnapshotInput<'_>> = manager_list
            .iter()
            .zip(&snaps)
            .map(|(m, s)| SnapshotInput::from_signed(s, &manager_nodes[m]))
            .collect();
        let mut caches: Vec<Vec<Option<(u64, i64)>>> =
            snaps.iter().map(|s| vec![None; s.n()]).collect();

        let router_ring = self.ring.clone();
        let router = Router::new(&router_ring);
        let mut pairs: Vec<SuspectPair> = Vec::new();
        // indices are per-snapshot, so the cross-manager marking stays on ids
        let mut checked: HashSet<(NodeId, NodeId)> = HashSet::new();

        for (k, &manager) in manager_list.iter().enumerate() {
            let snap = &snaps[k];
            let input = &inputs[k];
            let nodes = &manager_nodes[&manager];
            let my_key = self.manager_of[&nodes[0]];
            for &i in nodes {
                let i_idx = snap.index(i).expect("responsible node is interned");
                if !self.thresholds.is_high_reputed(input.reputation_of_idx(i_idx)) {
                    continue;
                }
                let (cols, _) = snap.row(i_idx);
                for &j_idx in cols {
                    let j = snap.node_id(j_idx);
                    meter.element_check();
                    let key = if i < j { (i, j) } else { (j, i) };
                    if checked.contains(&key) {
                        continue;
                    }
                    let Some(ev_fwd) =
                        self.direction_snap(snap, i_idx, Some(j_idx), &meter, &mut caches[k])
                    else {
                        continue;
                    };
                    checked.insert(key);
                    // locate the partner's manager
                    let Some(&partner_key) = self.manager_of.get(&j) else { continue };
                    let partner_manager = self.key_to_manager[&partner_key.raw()];
                    if partner_key != my_key {
                        let route = router.lookup(my_key, consistent_hash(j.raw(), 64));
                        self.stats.hops += route.hops as u64;
                        self.stats.detection_messages += 2;
                        meter.message();
                        meter.message();
                    }
                    // partner-side verification on the partner's OWN slice
                    let Some(&p_pos) = manager_pos.get(&partner_manager) else {
                        continue;
                    };
                    let p_snap = &snaps[p_pos];
                    let p_j = p_snap.index(j).expect("registered node is interned");
                    if !self.thresholds.is_high_reputed(inputs[p_pos].reputation_of_idx(p_j)) {
                        continue;
                    }
                    let ev_rev = self.direction_snap(
                        p_snap,
                        p_j,
                        p_snap.index(i),
                        &meter,
                        &mut caches[p_pos],
                    );
                    if self.policy.require_mutual {
                        let Some(rev) = ev_rev else { continue };
                        pairs.push(SuspectPair::new(j, i, Some(ev_fwd), Some(rev)));
                    } else {
                        pairs.push(SuspectPair::new(j, i, Some(ev_fwd), ev_rev));
                    }
                }
            }
        }
        DetectionReport::new(pairs, meter.snapshot())
    }

    fn direction_snap(
        &self,
        snap: &DetectionSnapshot,
        ratee: u32,
        rater: Option<u32>,
        meter: &CostMeter,
        cache: &mut [Option<(u64, i64)>],
    ) -> Option<DirectionEvidence> {
        match self.method {
            Method::Basic => BasicDetector::with_policy(self.thresholds, self.policy)
                .check_direction_snap(snap, ratee, rater, meter),
            Method::Optimized => OptimizedDetector::with_policy(self.thresholds, self.policy)
                .direction_cached(snap, ratee, rater, meter, cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::DetectionInput;
    use collusion_reputation::id::SimTime;

    fn thresholds() -> Thresholds {
        Thresholds::new(1.0, 20, 0.8, 0.2)
    }

    fn ratings() -> Vec<Rating> {
        let mut out = Vec::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        for (a, b) in [(1u64, 2u64), (20, 21)] {
            for _ in 0..30 {
                out.push(Rating::positive(NodeId(a), NodeId(b), tick()));
                out.push(Rating::positive(NodeId(b), NodeId(a), tick()));
            }
            for k in 0..5 {
                out.push(Rating::negative(NodeId(40 + k), NodeId(a), tick()));
                out.push(Rating::negative(NodeId(40 + k), NodeId(b), tick()));
            }
        }
        for k in 0..5u64 {
            for l in 0..5u64 {
                if k != l {
                    out.push(Rating::positive(NodeId(40 + k), NodeId(40 + l), tick()));
                }
            }
        }
        out
    }

    fn build_system(managers: u64) -> DecentralizedSystem {
        let manager_ids: Vec<NodeId> = (1000..1000 + managers).map(NodeId).collect();
        let mut sys = DecentralizedSystem::new(
            &manager_ids,
            thresholds(),
            Method::Optimized,
            DetectionPolicy::STRICT,
        );
        for id in (1..=2).chain(20..=21).chain(40..45) {
            sys.register(NodeId(id));
        }
        for r in ratings() {
            sys.submit(r);
        }
        sys
    }

    #[test]
    fn partitioned_detection_matches_centralized() {
        let mut h = InteractionHistory::new();
        for r in ratings() {
            h.record(r);
        }
        let nodes: Vec<NodeId> = (1..=2).chain(20..=21).chain(40..45).map(NodeId).collect();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let central = OptimizedDetector::new(thresholds()).detect(&input);
        for managers in [1u64, 3, 8, 32] {
            let mut sys = build_system(managers);
            let report = sys.detect();
            assert_eq!(
                report.pair_ids(),
                central.pair_ids(),
                "{managers} managers diverged from centralized"
            );
        }
    }

    #[test]
    fn lookups_agree_with_submitted_ratings() {
        let mut sys = build_system(8);
        // n1: +30 from partner, −5 community = +25
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(40)), 4); // praised by 4 peers
        assert_eq!(sys.lookup_reputation(NodeId(999)), 0); // unregistered
        let stats = sys.stats();
        assert_eq!(stats.lookups, 3);
        assert_eq!(stats.inserts, ratings().len() as u64);
    }

    #[test]
    fn self_and_unregistered_ratings_rejected() {
        let mut sys = build_system(4);
        assert!(!sys.submit(Rating::positive(NodeId(1), NodeId(1), SimTime(0))));
        assert!(!sys.submit(Rating::positive(NodeId(1), NodeId(777), SimTime(0))));
    }

    #[test]
    fn cross_manager_detection_costs_messages() {
        let mut sys = build_system(64);
        let report = sys.detect();
        assert_eq!(report.pairs.len(), 2);
        let stats = sys.stats();
        assert!(stats.detection_messages > 0, "expected cross-manager confirmations");
        assert_eq!(stats.detection_messages % 2, 0);
        assert!(stats.hops > 0);
    }

    #[test]
    fn single_manager_detects_without_messages() {
        let mut sys = build_system(1);
        let report = sys.detect();
        assert_eq!(report.pairs.len(), 2);
        assert_eq!(sys.stats().detection_messages, 0);
    }

    #[test]
    fn registration_is_idempotent_and_sorted() {
        let mut sys = DecentralizedSystem::new(
            &[NodeId(1000)],
            thresholds(),
            Method::Basic,
            DetectionPolicy::STRICT,
        );
        sys.register(NodeId(5));
        sys.register(NodeId(2));
        sys.register(NodeId(5));
        assert_eq!(sys.nodes, vec![NodeId(2), NodeId(5)]);
        assert_eq!(sys.manager_of(NodeId(5)), Some(NodeId(1000)));
        assert_eq!(sys.manager_of(NodeId(9)), None);
    }

    #[test]
    fn manager_churn_preserves_data_and_verdicts() {
        let mut sys = build_system(6);
        let baseline = {
            let mut reference = build_system(6);
            reference.detect().pair_ids()
        };
        // joins
        assert!(sys.manager_join(NodeId(2000)).is_some());
        assert!(sys.manager_join(NodeId(2001)).is_some());
        assert!(sys.manager_join(NodeId(2000)).is_none(), "duplicate join rejected");
        // leaves
        assert!(sys.manager_leave(NodeId(1000)).is_some());
        assert!(sys.manager_leave(NodeId(1000)).is_none(), "double leave rejected");
        // reputations unchanged by churn
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(40)), 4);
        // detection verdicts unchanged by churn
        assert_eq!(sys.detect().pair_ids(), baseline);
    }

    #[test]
    fn last_manager_cannot_leave() {
        let mut sys = build_system(1);
        let only = sys.manager_of(NodeId(1)).unwrap();
        assert!(sys.manager_leave(only).is_none());
        assert_eq!(sys.lookup_reputation(NodeId(1)), 25, "data survived");
    }

    #[test]
    fn heavy_churn_keeps_every_rating() {
        let mut sys = build_system(4);
        let expected: u64 = ratings().len() as u64;
        for k in 0..10u64 {
            sys.manager_join(NodeId(3000 + k));
        }
        for k in 0..3u64 {
            sys.manager_leave(NodeId(1000 + k));
        }
        // total recorded ratings across all manager histories is conserved
        let total: u64 = sys.histories.values().map(|h| h.recorded()).sum();
        assert_eq!(total, expected);
        // and every node's reputation is still readable and correct
        assert_eq!(sys.lookup_reputation(NodeId(20)), 25);
        assert_eq!(sys.lookup_reputation(NodeId(44)), 4);
    }

    #[test]
    fn basic_method_agrees_with_optimized_in_system() {
        let mut opt = build_system(8);
        let mut basic = build_system(8);
        basic.method = Method::Basic;
        assert_eq!(basic.detect().pair_ids(), opt.detect().pair_ids());
    }
}
