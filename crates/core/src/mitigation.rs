//! Mitigation: neutralizing detected colluders.
//!
//! §V.B: "After the methods detect the colluders, they set their reputations
//! to 0." With zero reputation a colluder is never selected as a server
//! (clients pick the highest-reputed neighbor), so the pair's business model
//! collapses — the deterrence argument of §III.
//!
//! Under fault injection a detection round also yields *unconfirmed*
//! suspect pairs — the forward test fired but the cross-manager
//! confirmation never completed. Zeroing those would punish on one-sided
//! evidence; ignoring them would let likely colluders keep trading on a
//! lossy network. [`apply_conservative_mitigation`] takes the middle road:
//! confirmed colluders are zeroed, unconfirmed suspects are *damped* by a
//! configurable factor until a later round settles the question.

use crate::model::SuspectPair;
use crate::report::DetectionReport;
use collusion_reputation::id::NodeId;
use std::collections::HashMap;

/// Zero out the reputation of every node implicated in `report`.
/// Returns the ids that were actually present and zeroed.
pub fn apply_mitigation(
    report: &DetectionReport,
    reputations: &mut HashMap<NodeId, f64>,
) -> Vec<NodeId> {
    let mut zeroed = Vec::new();
    for node in report.colluders() {
        if let Some(r) = reputations.get_mut(&node) {
            if *r != 0.0 {
                *r = 0.0;
            }
            zeroed.push(node);
        }
    }
    zeroed
}

/// Same, over a dense reputation vector indexed by node id.
pub fn apply_mitigation_vec(report: &DetectionReport, reputations: &mut [f64]) -> Vec<NodeId> {
    let mut zeroed = Vec::new();
    for node in report.colluders() {
        let idx = node.raw() as usize;
        if idx < reputations.len() {
            reputations[idx] = 0.0;
            zeroed.push(node);
        }
    }
    zeroed
}

/// Graceful-degradation mitigation: zero every confirmed colluder, and
/// multiply each merely *unconfirmed* suspect's reputation by `damping`
/// (in `[0, 1]`) instead of zeroing it. Nodes in both sets are zeroed.
/// Returns `(zeroed, damped)` node-id lists.
pub fn apply_conservative_mitigation(
    confirmed: &DetectionReport,
    unconfirmed: &[SuspectPair],
    reputations: &mut HashMap<NodeId, f64>,
    damping: f64,
) -> (Vec<NodeId>, Vec<NodeId>) {
    assert!((0.0..=1.0).contains(&damping), "damping {damping} out of [0, 1]");
    let zeroed = apply_mitigation(confirmed, reputations);
    let mut damped = Vec::new();
    for pair in unconfirmed {
        let (a, b) = pair.ids();
        for node in [a, b] {
            if zeroed.contains(&node) || damped.contains(&node) {
                continue; // already zeroed (or damped once) this round
            }
            if let Some(r) = reputations.get_mut(&node) {
                *r *= damping;
                damped.push(node);
            }
        }
    }
    (zeroed, damped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostSnapshot;
    use crate::model::{DirectionEvidence, SuspectPair};

    fn report(pairs: &[(u64, u64)]) -> DetectionReport {
        let ev = DirectionEvidence {
            pair_ratings: 30,
            fraction_a: None,
            fraction_b: None,
            signed_reputation: 10,
        };
        DetectionReport::new(
            pairs
                .iter()
                .map(|&(a, b)| SuspectPair::new(NodeId(a), NodeId(b), Some(ev), Some(ev)))
                .collect(),
            CostSnapshot::default(),
        )
    }

    #[test]
    fn map_mitigation_zeroes_colluders_only() {
        let mut reps: HashMap<NodeId, f64> = (1..=5).map(|i| (NodeId(i), 0.1 * i as f64)).collect();
        let zeroed = apply_mitigation(&report(&[(1, 2)]), &mut reps);
        assert_eq!(zeroed, vec![NodeId(1), NodeId(2)]);
        assert_eq!(reps[&NodeId(1)], 0.0);
        assert_eq!(reps[&NodeId(2)], 0.0);
        assert!(reps[&NodeId(3)] > 0.0);
    }

    #[test]
    fn unknown_nodes_skipped() {
        let mut reps: HashMap<NodeId, f64> = [(NodeId(1), 0.5)].into_iter().collect();
        let zeroed = apply_mitigation(&report(&[(1, 9)]), &mut reps);
        assert_eq!(zeroed, vec![NodeId(1)]);
        assert_eq!(reps.len(), 1);
    }

    #[test]
    fn vec_mitigation_bounds_checked() {
        let mut reps = vec![0.1, 0.2, 0.3];
        let zeroed = apply_mitigation_vec(&report(&[(1, 7)]), &mut reps);
        assert_eq!(zeroed, vec![NodeId(1)]);
        assert_eq!(reps, vec![0.1, 0.0, 0.3]);
    }

    #[test]
    fn empty_report_is_noop() {
        let mut reps = vec![0.5; 4];
        let zeroed = apply_mitigation_vec(&DetectionReport::default(), &mut reps);
        assert!(zeroed.is_empty());
        assert_eq!(reps, vec![0.5; 4]);
    }

    fn unconfirmed(pairs: &[(u64, u64)]) -> Vec<SuspectPair> {
        let ev = DirectionEvidence {
            pair_ratings: 30,
            fraction_a: None,
            fraction_b: None,
            signed_reputation: 10,
        };
        pairs.iter().map(|&(a, b)| SuspectPair::new(NodeId(a), NodeId(b), Some(ev), None)).collect()
    }

    #[test]
    fn conservative_mitigation_damps_unconfirmed_only() {
        let mut reps: HashMap<NodeId, f64> = (1..=6).map(|i| (NodeId(i), 1.0)).collect();
        let (zeroed, damped) = apply_conservative_mitigation(
            &report(&[(1, 2)]),
            &unconfirmed(&[(3, 4)]),
            &mut reps,
            0.5,
        );
        assert_eq!(zeroed, vec![NodeId(1), NodeId(2)]);
        assert_eq!(damped, vec![NodeId(3), NodeId(4)]);
        assert_eq!(reps[&NodeId(1)], 0.0);
        assert_eq!(reps[&NodeId(3)], 0.5);
        assert_eq!(reps[&NodeId(5)], 1.0, "untouched bystander");
    }

    #[test]
    fn conservative_mitigation_zero_takes_precedence() {
        // node 2 is both confirmed (with 1) and unconfirmed (with 3):
        // zeroing wins, and node 3 is damped exactly once
        let mut reps: HashMap<NodeId, f64> = (1..=3).map(|i| (NodeId(i), 1.0)).collect();
        let (zeroed, damped) = apply_conservative_mitigation(
            &report(&[(1, 2)]),
            &unconfirmed(&[(2, 3), (2, 3)]),
            &mut reps,
            0.25,
        );
        assert_eq!(zeroed, vec![NodeId(1), NodeId(2)]);
        assert_eq!(damped, vec![NodeId(3)]);
        assert_eq!(reps[&NodeId(2)], 0.0);
        assert_eq!(reps[&NodeId(3)], 0.25);
    }

    #[test]
    fn zero_damping_equals_full_mitigation_for_suspects() {
        let mut reps: HashMap<NodeId, f64> = (1..=2).map(|i| (NodeId(i), 1.0)).collect();
        let (_, damped) = apply_conservative_mitigation(
            &DetectionReport::default(),
            &unconfirmed(&[(1, 2)]),
            &mut reps,
            0.0,
        );
        assert_eq!(damped, vec![NodeId(1), NodeId(2)]);
        assert_eq!(reps[&NodeId(1)], 0.0);
    }
}
