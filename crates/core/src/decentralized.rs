//! Decentralized detection across DHT-hosted reputation managers.
//!
//! §IV.B–C: the managers are high-reputed "power nodes" forming a Chord
//! ring; manager `M_i` (the DHT owner of `ID_i`) holds every rating *about*
//! `n_i`. `M_i` runs the forward direction test for each of its responsible
//! high-reputed nodes locally; when node `n_i` looks boosted by `n_j` and
//! `n_j` is managed elsewhere, `M_i` routes a confirmation request to `M_j`
//! via `Insert(j, msg)`. `M_j` verifies `R_j ≥ T_R`, `N(i,j) ≥ T_N` and the
//! reverse direction test and answers positively iff they hold.
//!
//! Message accounting: every cross-manager confirmation costs one request
//! plus one response; requests are routed over the Chord ring, so routing
//! hops are counted too. The reported pair set is identical to the
//! centralized detector's — verified by the equivalence tests below.

use crate::basic::BasicDetector;
use crate::cost::CostMeter;
use crate::fault::{FaultPlan, FaultSession, FaultStats};
use crate::input::{DetectionInput, SnapshotInput};
use crate::model::{DirectionEvidence, SuspectPair};
use crate::optimized::OptimizedDetector;
use crate::pairset::PairSet;
use crate::report::DetectionReport;
use collusion_dht::hash::consistent_hash;
use collusion_dht::id::Key;
use collusion_dht::ring::ChordRing;
use collusion_dht::routing::Router;
use collusion_reputation::id::NodeId;
use collusion_reputation::snapshot::DetectionSnapshot;
use collusion_reputation::thresholds::Thresholds;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which direction-test the managers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// Row-scanning fraction test (§IV.B).
    Basic,
    /// Formula (2) band test (§IV.C).
    Optimized,
}

/// A decentralized detection run.
#[derive(Clone, Copy, Debug)]
pub struct DecentralizedDetector {
    /// Detection thresholds.
    pub thresholds: Thresholds,
    /// Direction-test variant.
    pub method: Method,
}

/// Result of a decentralized pass, with communication costs.
///
/// Under fault injection the suspect pairs partition into *confirmed* (the
/// cross-manager round-trip completed and the partner verified) and
/// *unconfirmed* (the forward test fired but the confirmation exchange
/// exhausted its retry budget — degraded, forward-evidence-only findings
/// that are reported instead of silently dropped). A fault-free run has an
/// empty `unconfirmed` set and `fault.completeness() == 1.0`.
#[derive(Clone, Debug)]
pub struct DecentralizedOutcome {
    /// The detection report of confirmed pairs (+ local operation cost).
    pub report: DetectionReport,
    /// Suspect pairs whose confirmation exchange failed under faults:
    /// forward evidence only, partner verdict unknown.
    pub unconfirmed: Vec<SuspectPair>,
    /// Manager-to-manager messages (requests + responses actually sent,
    /// including retransmissions and dropped messages).
    pub messages: u64,
    /// Chord routing hops consumed by those messages.
    pub dht_hops: u64,
    /// Number of managers that participated.
    pub manager_count: usize,
    /// How many nodes each manager was responsible for.
    pub load: HashMap<NodeId, usize>,
    /// Fault accounting: retries, drops, failed exchanges, completeness.
    pub fault: FaultStats,
}

impl DecentralizedDetector {
    /// Detector with the given thresholds and method.
    pub fn new(thresholds: Thresholds, method: Method) -> Self {
        DecentralizedDetector { thresholds, method }
    }

    /// Run detection with `managers` as the DHT power nodes.
    ///
    /// Every node in `input.nodes` is assigned to the Chord owner of
    /// `consistent_hash(node_id)`; each manager scans only its responsible
    /// nodes and requests cross-manager confirmations as needed.
    ///
    /// Internally the pass freezes the history into a [`DetectionSnapshot`]
    /// once, so every manager's row walk and every partner probe is an
    /// array access — the reported pairs, metered costs, messages and hops
    /// are identical to the former hash-map implementation.
    ///
    /// Equivalent to [`DecentralizedDetector::detect_with_faults`] with
    /// [`FaultPlan::none`] — bit-identical by the zero-draw contract.
    pub fn detect(&self, input: &DetectionInput<'_>, managers: &[NodeId]) -> DecentralizedOutcome {
        self.detect_with_faults(input, managers, &FaultPlan::none())
    }

    /// Run detection with `managers` as the DHT power nodes, injecting the
    /// message faults of `plan` into every cross-manager confirmation.
    ///
    /// Each confirmation is a request/response exchange through a
    /// [`FaultSession`]: dropped messages are retried (with exponential
    /// backoff) up to the plan's budget, every transmission is counted in
    /// `messages` and metered, and the request is re-routed per attempt (so
    /// `dht_hops` reflects retransmissions too). A pair whose exchange fails
    /// outright degrades into the `unconfirmed` set instead of vanishing.
    ///
    /// Note: `plan.churn` is ignored here — a detector run is a single
    /// round over a fixed manager set; per-period churn is driven by
    /// [`crate::system::DecentralizedSystem::apply_churn`].
    pub fn detect_with_faults(
        &self,
        input: &DetectionInput<'_>,
        managers: &[NodeId],
        plan: &FaultPlan,
    ) -> DecentralizedOutcome {
        assert!(!managers.is_empty(), "need at least one reputation manager");
        // Build the manager ring.
        let mut ring = ChordRing::new();
        let mut key_to_manager: HashMap<u64, NodeId> = HashMap::new();
        for &m in managers {
            let key = consistent_hash(m.raw(), 64);
            if ring.join_with_key(key) {
                key_to_manager.insert(key.raw(), m);
            }
        }
        // Assign nodes to managers.
        let owner_key = |node: NodeId| -> Key { ring.owner(consistent_hash(node.raw(), 64)) };
        let mut responsibility: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut manager_of: HashMap<NodeId, Key> = HashMap::new();
        for &node in &input.nodes {
            let key = owner_key(node);
            let manager = key_to_manager[&key.raw()];
            responsibility.entry(manager).or_default().push(node);
            manager_of.insert(node, key);
        }

        // Freeze the rating matrix once for all managers.
        let snap = DetectionSnapshot::build(input.history, &input.nodes);
        let sinput = SnapshotInput::new(&snap, &input.nodes, &input.reputation);

        let meter = CostMeter::new();
        let mut cache: Vec<Option<(u64, i64)>> = vec![None; snap.n()];
        let router = Router::new(&ring);
        let mut session = FaultSession::new(plan);
        let mut messages = 0u64;
        let mut dht_hops = 0u64;
        let mut checked = PairSet::default();
        let mut pairs: Vec<SuspectPair> = Vec::new();
        let mut unconfirmed: Vec<SuspectPair> = Vec::new();

        // deterministic manager order
        let mut manager_list: Vec<NodeId> = responsibility.keys().copied().collect();
        manager_list.sort_unstable();

        for &manager in &manager_list {
            let my_key = manager_of
                .get(responsibility[&manager].first().expect("non-empty responsibility"))
                .copied()
                .expect("manager key");
            let mut my_nodes = responsibility[&manager].clone();
            my_nodes.sort_unstable();
            for &i in &my_nodes {
                let i_idx = snap.index(i).expect("responsible node is interned");
                // C1 filter on the local responsible node.
                if !self.thresholds.is_high_reputed(sinput.reputation_of_idx(i_idx)) {
                    continue;
                }
                let (cols, _) = snap.row(i_idx);
                for &j_idx in cols {
                    meter.element_check();
                    if checked.contains(i_idx, j_idx) {
                        continue;
                    }
                    // Forward test runs locally; R_j is *not* known here —
                    // the partner's manager verifies it (paper protocol).
                    let forward = self.direction_snap(&snap, i_idx, j_idx, &meter, &mut cache);
                    let Some(ev_fwd) = forward else { continue };
                    checked.insert(i_idx, j_idx);
                    // Locate the partner's manager.
                    let j = snap.node_id(j_idx);
                    let partner_key = match manager_of.get(&j) {
                        Some(&k) => k,
                        None => continue, // unmanaged outsider (e.g. left the system)
                    };
                    let local = partner_key == my_key;
                    if !local {
                        let route = router.lookup(my_key, consistent_hash(j.raw(), 64));
                        let exchange = session.exchange();
                        // every attempt re-routes its request
                        dht_hops += route.hops as u64 * exchange.attempts as u64;
                        messages += exchange.messages;
                        for _ in 0..exchange.messages {
                            meter.message();
                        }
                        if !exchange.delivered {
                            // Degraded finding: the partner never answered,
                            // so report the pair as unconfirmed rather than
                            // silently dropping it (probe-once semantics —
                            // `checked` already holds the pair).
                            unconfirmed.push(SuspectPair::new(j, i, Some(ev_fwd), None));
                            continue;
                        }
                    }
                    // Partner-side verification: R_j ≥ T_R + reverse test.
                    if !self.thresholds.is_high_reputed(sinput.reputation_of_idx(j_idx)) {
                        continue;
                    }
                    let Some(ev_rev) = self.direction_snap(&snap, j_idx, i_idx, &meter, &mut cache)
                    else {
                        continue;
                    };
                    pairs.push(SuspectPair::new(j, i, Some(ev_fwd), Some(ev_rev)));
                }
            }
        }

        let load = responsibility.iter().map(|(&m, v)| (m, v.len())).collect();
        DecentralizedOutcome {
            report: DetectionReport::new(pairs, meter.snapshot()),
            unconfirmed,
            messages,
            dht_hops,
            manager_count: manager_list.len(),
            load,
            fault: session.stats(),
        }
    }

    fn direction_snap(
        &self,
        snap: &DetectionSnapshot,
        ratee: u32,
        rater: u32,
        meter: &CostMeter,
        cache: &mut [Option<(u64, i64)>],
    ) -> Option<DirectionEvidence> {
        match self.method {
            Method::Basic => BasicDetector::new(self.thresholds).check_direction_snap(
                snap,
                ratee,
                Some(rater),
                meter,
            ),
            Method::Optimized => OptimizedDetector::new(self.thresholds).direction_cached(
                snap,
                ratee,
                Some(rater),
                meter,
                cache,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collusion_reputation::history::InteractionHistory;
    use collusion_reputation::id::SimTime;
    use collusion_reputation::rating::Rating;

    fn thresholds() -> Thresholds {
        Thresholds::new(1.0, 20, 0.8, 0.2)
    }

    /// Three colluding pairs + honest traffic across 40 nodes.
    fn scenario() -> (InteractionHistory, Vec<NodeId>) {
        let mut h = InteractionHistory::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        for (a, b) in [(1u64, 2u64), (11, 12), (21, 22)] {
            for _ in 0..25 {
                h.record(Rating::positive(NodeId(a), NodeId(b), tick()));
                h.record(Rating::positive(NodeId(b), NodeId(a), tick()));
            }
            for k in 0..4 {
                h.record(Rating::negative(NodeId(30 + k), NodeId(a), tick()));
                h.record(Rating::negative(NodeId(30 + k), NodeId(b), tick()));
            }
        }
        // honest praise among 30..40
        for k in 0..10u64 {
            for l in 0..10u64 {
                if k != l {
                    h.record(Rating::positive(NodeId(30 + k), NodeId(30 + l), tick()));
                }
            }
        }
        let nodes: Vec<NodeId> = (1..=40).map(NodeId).collect();
        (h, nodes)
    }

    #[test]
    fn decentralized_matches_centralized_optimized() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let central = OptimizedDetector::new(thresholds()).detect(&input);
        let managers: Vec<NodeId> = (100..108).map(NodeId).collect();
        let dec =
            DecentralizedDetector::new(thresholds(), Method::Optimized).detect(&input, &managers);
        assert_eq!(dec.report.pair_ids(), central.pair_ids());
    }

    #[test]
    fn decentralized_matches_centralized_basic() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let central = BasicDetector::new(thresholds()).detect(&input);
        let managers: Vec<NodeId> = (100..104).map(NodeId).collect();
        let dec = DecentralizedDetector::new(thresholds(), Method::Basic).detect(&input, &managers);
        assert_eq!(dec.report.pair_ids(), central.pair_ids());
    }

    #[test]
    fn single_manager_needs_no_messages() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let dec = DecentralizedDetector::new(thresholds(), Method::Optimized)
            .detect(&input, &[NodeId(100)]);
        assert_eq!(dec.messages, 0);
        assert_eq!(dec.dht_hops, 0);
        assert_eq!(dec.manager_count, 1);
        assert_eq!(dec.report.pairs.len(), 3);
    }

    #[test]
    fn cross_manager_pairs_cost_messages() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        // many managers → colluder partners usually live on different managers
        let managers: Vec<NodeId> = (100..164).map(NodeId).collect();
        let dec =
            DecentralizedDetector::new(thresholds(), Method::Optimized).detect(&input, &managers);
        assert_eq!(dec.report.pairs.len(), 3);
        assert!(dec.messages > 0, "expected cross-manager confirmations");
        assert_eq!(dec.messages % 2, 0, "messages come in request/response pairs");
    }

    #[test]
    fn load_partitions_all_nodes() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers: Vec<NodeId> = (100..116).map(NodeId).collect();
        let dec =
            DecentralizedDetector::new(thresholds(), Method::Optimized).detect(&input, &managers);
        let total: usize = dec.load.values().sum();
        assert_eq!(total, nodes.len());
    }

    #[test]
    #[should_panic(expected = "at least one reputation manager")]
    fn empty_manager_set_rejected() {
        let h = InteractionHistory::new();
        let input = DetectionInput::from_signed_history(&h, &[NodeId(1)]);
        let _ = DecentralizedDetector::new(thresholds(), Method::Optimized).detect(&input, &[]);
    }

    #[test]
    fn duplicate_managers_tolerated() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers = vec![NodeId(100), NodeId(100), NodeId(101)];
        let dec =
            DecentralizedDetector::new(thresholds(), Method::Optimized).detect(&input, &managers);
        assert_eq!(dec.report.pairs.len(), 3);
    }

    #[test]
    fn fault_free_run_reports_full_completeness() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers: Vec<NodeId> = (100..132).map(NodeId).collect();
        let dec =
            DecentralizedDetector::new(thresholds(), Method::Optimized).detect(&input, &managers);
        assert!(dec.unconfirmed.is_empty());
        assert_eq!(dec.fault.failed_exchanges, 0);
        assert_eq!(dec.fault.retries, 0);
        assert_eq!(dec.fault.completeness(), 1.0);
        // exchanges happened, so the accounting is live, not vacuous
        assert!(dec.fault.exchanges > 0);
        assert_eq!(dec.fault.messages_sent, dec.messages);
    }

    /// Degradation invariants that hold for ANY drop rate and seed:
    /// confirmed ⊆ fault-free, and fault-free ⊆ confirmed ∪ unconfirmed
    /// (nothing silently dropped).
    #[test]
    fn degraded_runs_partition_instead_of_dropping() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers: Vec<NodeId> = (100..164).map(NodeId).collect();
        let detector = DecentralizedDetector::new(thresholds(), Method::Optimized);
        let clean: std::collections::BTreeSet<_> =
            detector.detect(&input, &managers).report.pair_ids().into_iter().collect();
        assert_eq!(clean.len(), 3);
        for seed in 0..20u64 {
            // retries(0) at 50% drop: exchanges fail often
            let plan = FaultPlan::with_drop(0.5, seed).retries(0);
            let dec = detector.detect_with_faults(&input, &managers, &plan);
            let confirmed: std::collections::BTreeSet<_> =
                dec.report.pair_ids().into_iter().collect();
            let unconfirmed: std::collections::BTreeSet<_> =
                dec.unconfirmed.iter().map(|p| p.ids()).collect();
            assert!(confirmed.is_subset(&clean), "seed {seed}: phantom confirmed pair");
            for pair in &clean {
                assert!(
                    confirmed.contains(pair) || unconfirmed.contains(pair),
                    "seed {seed}: true pair {pair:?} vanished instead of degrading"
                );
            }
            assert!(dec.fault.failed_exchanges as usize >= unconfirmed.len());
        }
    }

    #[test]
    fn heavy_drop_yields_unconfirmed_pairs() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers: Vec<NodeId> = (100..164).map(NodeId).collect();
        let detector = DecentralizedDetector::new(thresholds(), Method::Optimized);
        // across a handful of seeds, 30% drop with a single attempt must
        // fail at least one exchange somewhere
        let mut saw_unconfirmed = false;
        for seed in 0..8u64 {
            let plan = FaultPlan::with_drop(0.3, seed).retries(0);
            let dec = detector.detect_with_faults(&input, &managers, &plan);
            saw_unconfirmed |= !dec.unconfirmed.is_empty();
        }
        assert!(saw_unconfirmed, "30% drop with no retries never failed an exchange");
    }

    #[test]
    fn same_fault_seed_gives_identical_outcome() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers: Vec<NodeId> = (100..164).map(NodeId).collect();
        let detector = DecentralizedDetector::new(thresholds(), Method::Optimized);
        let plan = FaultPlan::with_drop(0.3, 1234).retries(1);
        let a = detector.detect_with_faults(&input, &managers, &plan);
        let b = detector.detect_with_faults(&input, &managers, &plan);
        assert_eq!(a.report.pair_ids(), b.report.pair_ids());
        assert_eq!(
            a.unconfirmed.iter().map(|p| p.ids()).collect::<Vec<_>>(),
            b.unconfirmed.iter().map(|p| p.ids()).collect::<Vec<_>>()
        );
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.dht_hops, b.dht_hops);
        assert_eq!(a.fault, b.fault);
    }

    #[test]
    fn retries_restore_the_fault_free_pair_set_at_moderate_drop() {
        let (h, nodes) = scenario();
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let managers: Vec<NodeId> = (100..164).map(NodeId).collect();
        let detector = DecentralizedDetector::new(thresholds(), Method::Optimized);
        let clean = detector.detect(&input, &managers).report.pair_ids();
        for seed in 0..10u64 {
            let dec =
                detector.detect_with_faults(&input, &managers, &FaultPlan::with_drop(0.1, seed));
            assert_eq!(
                dec.report.pair_ids(),
                clean,
                "seed {seed}: default retry budget failed to absorb 10% drop"
            );
            assert!(dec.unconfirmed.is_empty());
        }
    }
}
