//! The collusion model (§III–§IV.B, Figure 3).
//!
//! The paper's trace analysis yields five behaviour characteristics
//! ([`Characteristic`]); the collusion model combines them: *two* nodes (C5)
//! *frequently* (C4) rate *high* for each other (C3) to gain *high global
//! reputation* (C1) while *receiving low ratings from everyone else* (C2).
//!
//! A detected instance of the model is a [`SuspectPair`]: an unordered pair
//! of node ids with the per-direction evidence that triggered the detection.

use collusion_reputation::id::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five collusion characteristics the paper derives from real traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Characteristic {
    /// C1 — collusion leads to high reputation of the colluders.
    C1HighReputation,
    /// C2 — among high-reputed nodes, colluders receive more low ratings
    /// than non-colluders.
    C2LowCommunityRatings,
    /// C3 — colluders frequently submit very high ratings for conspirators.
    C3MutualHighRatings,
    /// C4 — rating frequency between colluders far exceeds the frequency
    /// between normal nodes (55/yr vs 15/yr in the Amazon trace).
    C4HighFrequency,
    /// C5 — collusion is almost always pair-wise; groups of ≥3 are rare.
    C5PairWise,
}

impl Characteristic {
    /// All five characteristics in paper order.
    pub const ALL: [Characteristic; 5] = [
        Characteristic::C1HighReputation,
        Characteristic::C2LowCommunityRatings,
        Characteristic::C3MutualHighRatings,
        Characteristic::C4HighFrequency,
        Characteristic::C5PairWise,
    ];

    /// The paper's shorthand (C1…C5).
    pub fn code(self) -> &'static str {
        match self {
            Characteristic::C1HighReputation => "C1",
            Characteristic::C2LowCommunityRatings => "C2",
            Characteristic::C3MutualHighRatings => "C3",
            Characteristic::C4HighFrequency => "C4",
            Characteristic::C5PairWise => "C5",
        }
    }
}

impl fmt::Display for Characteristic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// Evidence gathered for one direction of a suspected pair: rater `j`
/// boosting ratee `i`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DirectionEvidence {
    /// `N(j,i)`: how often `j` rated `i` in the period.
    pub pair_ratings: u64,
    /// The positive fraction `a` from the partner (basic detector) — `None`
    /// for the optimized detector, which never computes it.
    pub fraction_a: Option<f64>,
    /// The community positive fraction `b` — `None` for the optimized
    /// detector.
    pub fraction_b: Option<f64>,
    /// Signed reputation `R_i` used in the band check (optimized detector).
    pub signed_reputation: i64,
}

/// An unordered pair of suspected colluders with per-direction evidence.
///
/// The pair is stored with `low < high` so equal pairs compare equal
/// regardless of detection order. Under the strict §IV policy both
/// directions carry evidence; under the extended one-directional policy
/// (see `policy`), the unconfirmed direction is `None`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuspectPair {
    /// The smaller node id.
    pub low: NodeId,
    /// The larger node id.
    pub high: NodeId,
    /// Evidence for "low boosts high", if that direction was confirmed.
    pub low_boosts_high: Option<DirectionEvidence>,
    /// Evidence for "high boosts low", if that direction was confirmed.
    pub high_boosts_low: Option<DirectionEvidence>,
}

impl SuspectPair {
    /// Construct a pair, normalizing order. `a_boosts_b` is evidence that
    /// `a` boosts `b`; `b_boosts_a` the reverse. Panics if `a == b` or if
    /// neither direction has evidence.
    pub fn new(
        a: NodeId,
        b: NodeId,
        a_boosts_b: Option<DirectionEvidence>,
        b_boosts_a: Option<DirectionEvidence>,
    ) -> Self {
        assert_ne!(a, b, "a node cannot collude with itself");
        assert!(
            a_boosts_b.is_some() || b_boosts_a.is_some(),
            "a suspect pair needs evidence in at least one direction"
        );
        if a < b {
            SuspectPair {
                low: a,
                high: b,
                low_boosts_high: a_boosts_b,
                high_boosts_low: b_boosts_a,
            }
        } else {
            SuspectPair {
                low: b,
                high: a,
                low_boosts_high: b_boosts_a,
                high_boosts_low: a_boosts_b,
            }
        }
    }

    /// Whether both directions carry evidence (strict §IV detection).
    pub fn is_mutual(&self) -> bool {
        self.low_boosts_high.is_some() && self.high_boosts_low.is_some()
    }

    /// The unordered id pair, for set comparisons.
    pub fn ids(&self) -> (NodeId, NodeId) {
        (self.low, self.high)
    }

    /// Whether `node` is part of the pair.
    pub fn involves(&self, node: NodeId) -> bool {
        self.low == node || self.high == node
    }

    /// The other member of the pair, if `node` belongs to it.
    pub fn partner_of(&self, node: NodeId) -> Option<NodeId> {
        if node == self.low {
            Some(self.high)
        } else if node == self.high {
            Some(self.low)
        } else {
            None
        }
    }
}

impl fmt::Display for SuspectPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.low, self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> DirectionEvidence {
        DirectionEvidence {
            pair_ratings: n,
            fraction_a: None,
            fraction_b: None,
            signed_reputation: 0,
        }
    }

    #[test]
    fn characteristics_enumerate_in_paper_order() {
        let codes: Vec<&str> = Characteristic::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(codes, vec!["C1", "C2", "C3", "C4", "C5"]);
        assert_eq!(Characteristic::C4HighFrequency.to_string(), "C4");
    }

    #[test]
    fn pair_normalizes_order_and_evidence() {
        let p = SuspectPair::new(NodeId(9), NodeId(2), Some(ev(55)), Some(ev(40)));
        assert_eq!(p.ids(), (NodeId(2), NodeId(9)));
        // evidence "9 boosts 2" became high_boosts_low
        assert_eq!(p.high_boosts_low.unwrap().pair_ratings, 55);
        assert_eq!(p.low_boosts_high.unwrap().pair_ratings, 40);
        assert!(p.is_mutual());
        let q = SuspectPair::new(NodeId(2), NodeId(9), Some(ev(40)), Some(ev(55)));
        assert_eq!(p, q);
    }

    #[test]
    fn one_directional_pair_not_mutual() {
        let p = SuspectPair::new(NodeId(1), NodeId(2), Some(ev(30)), None);
        assert!(!p.is_mutual());
        assert_eq!(p.low_boosts_high.unwrap().pair_ratings, 30);
        assert!(p.high_boosts_low.is_none());
    }

    #[test]
    #[should_panic(expected = "at least one direction")]
    fn evidence_free_pair_rejected() {
        let _ = SuspectPair::new(NodeId(1), NodeId(2), None, None);
    }

    #[test]
    fn involvement_and_partner() {
        let p = SuspectPair::new(NodeId(1), NodeId(5), Some(ev(1)), Some(ev(1)));
        assert!(p.involves(NodeId(1)));
        assert!(p.involves(NodeId(5)));
        assert!(!p.involves(NodeId(3)));
        assert_eq!(p.partner_of(NodeId(1)), Some(NodeId(5)));
        assert_eq!(p.partner_of(NodeId(5)), Some(NodeId(1)));
        assert_eq!(p.partner_of(NodeId(3)), None);
    }

    #[test]
    #[should_panic(expected = "collude with itself")]
    fn self_pair_rejected() {
        let _ = SuspectPair::new(NodeId(4), NodeId(4), Some(ev(1)), Some(ev(1)));
    }

    #[test]
    fn display_formats() {
        let p = SuspectPair::new(NodeId(3), NodeId(1), Some(ev(0)), Some(ev(0)));
        assert_eq!(p.to_string(), "(n1, n3)");
    }
}
