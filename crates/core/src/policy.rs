//! Detection policy: the strict §IV procedure vs. the extended policy the
//! evaluation scenarios need.
//!
//! The paper's §IV procedure (a) requires *mutual* boosting before flagging
//! a pair and (b) computes the community fraction `b` over *all* raters
//! other than the tested partner. Two of its own evaluation results require
//! generalizations, which we make explicit and configurable instead of
//! silently baking in:
//!
//! * **Multi-booster pollution.** In Figures 7/11 node `n_4` is boosted by
//!   *two* partners (`n_5` and the compromised pretrusted `n_1`). When `b`
//!   for the pair `(n_4, n_5)` includes `n_1`'s thousands of positive
//!   ratings, `b` is high and the pair escapes. Setting
//!   [`DetectionPolicy::community_excludes_frequent`] computes `b` only over
//!   raters *below the frequency threshold* `T_N` — the actual community —
//!   which matches the collusion model's C2 ("receive low ratings from
//!   other nodes", i.e. nodes outside the colluding collective).
//!
//! * **One-directional boosting.** A compromised pretrusted node serves
//!   authentic files, so its own reputation is community-backed and the
//!   reverse direction test can never fire; yet Figure 11 zeroes it. The
//!   paper's own collusion definition covers this: colluders "give each
//!   other high local reputation values **and (or)** give all other peers
//!   low local reputation values" (§I) — boosting alone is conspiring.
//!   Clearing [`DetectionPolicy::require_mutual`] implicates both ends of a
//!   confirmed boosting direction.
//!
//! Defaults are the strict §IV readings; the simulator's scenarios use
//! [`DetectionPolicy::EXTENDED`].

use serde::{Deserialize, Serialize};

/// Configuration switches for the detection procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionPolicy {
    /// Require evidence in both directions before flagging a pair
    /// (strict §IV). When `false`, a confirmed boosting direction
    /// implicates both nodes.
    pub require_mutual: bool,
    /// Compute the community fraction `b` only over raters below the
    /// frequency threshold `T_N` (excludes fellow boosters). When `false`,
    /// `b` spans every rater except the tested partner (strict §IV).
    pub community_excludes_frequent: bool,
}

impl DetectionPolicy {
    /// The strict §IV procedure.
    pub const STRICT: DetectionPolicy =
        DetectionPolicy { require_mutual: true, community_excludes_frequent: false };

    /// The extended policy used by the evaluation scenarios (Figures 8–13).
    pub const EXTENDED: DetectionPolicy =
        DetectionPolicy { require_mutual: false, community_excludes_frequent: true };
}

impl Default for DetectionPolicy {
    fn default() -> Self {
        DetectionPolicy::STRICT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_is_default() {
        assert_eq!(DetectionPolicy::default(), DetectionPolicy::STRICT);
        assert_eq!(
            DetectionPolicy::STRICT,
            DetectionPolicy { require_mutual: true, community_excludes_frequent: false }
        );
    }

    #[test]
    fn extended_flips_both_switches() {
        assert_eq!(
            DetectionPolicy::EXTENDED,
            DetectionPolicy { require_mutual: false, community_excludes_frequent: true }
        );
    }
}
