//! The basic ("Unoptimized") collusion detection method (§IV.B).
//!
//! For every high-reputed node `n_i` (C1) the manager walks the matrix row
//! of `n_i`'s raters. For a rater `n_j` that is itself high-reputed (C1) and
//! rates frequently (`N(j,i) ≥ T_N`, C4) with mostly-positive ratings
//! (`a ≥ T_a`, C3), the manager scans the *rest of the row* to compute the
//! community fraction `b`; `b < T_b` (C2) makes the direction suspicious.
//! The same check is repeated in the reverse direction (`n_i` boosting
//! `n_j`); only a mutually suspicious pair is reported (C5: pairs). After a
//! pair is examined, both matrix cells are marked so it is never reexamined
//! from the other side.
//!
//! The row scan is what makes this method `O(m·n²)` (Proposition 4.1) and
//! what the optimized method eliminates.
//!
//! **Community-evidence convention.** The paper's `b < T_b` test is
//! undefined when the ratee has no raters besides the partner
//! (`N(−j,i) = 0`). We require at least one outside rating — C2 is about
//! *receiving* low ratings from others, which demands others exist. The
//! optimized detector inherits the same convention so the two agree.

use crate::cost::CostMeter;
use crate::input::{DetectionInput, SnapshotInput};
use crate::model::{DirectionEvidence, SuspectPair};
use crate::pairset::PairSet;
use crate::policy::DetectionPolicy;
use crate::report::DetectionReport;
use collusion_reputation::history::PairCounters;
use collusion_reputation::id::NodeId;
use collusion_reputation::thresholds::Thresholds;
use collusion_reputation::view::SnapshotView;
use rayon::prelude::*;
use std::collections::HashSet;

/// The `O(m·n²)` row-scanning detector.
#[derive(Clone, Copy, Debug)]
pub struct BasicDetector {
    /// Detection thresholds.
    pub thresholds: Thresholds,
    /// Strict §IV procedure or the extended evaluation policy.
    pub policy: DetectionPolicy,
}

impl BasicDetector {
    /// Detector with the given thresholds and the strict §IV policy.
    pub fn new(thresholds: Thresholds) -> Self {
        BasicDetector { thresholds, policy: DetectionPolicy::STRICT }
    }

    /// Detector with an explicit policy.
    pub fn with_policy(thresholds: Thresholds, policy: DetectionPolicy) -> Self {
        BasicDetector { thresholds, policy }
    }

    /// Sequential detection with pair marking (the paper's exact procedure).
    ///
    /// The manager "scans each row in the matrix in the top-down manner,
    /// and scans elements in each row from the left to the right": every
    /// column `j` of a high-reputed row `i` is inspected, whether or not
    /// `n_j` ever rated `n_i` — the matrix is dense. This is what makes the
    /// method `O(m·n²)` and the Figure 13 cost curve what it is; the
    /// [`BasicDetector::detect_par`] variant keeps the identical detection
    /// predicate but iterates sparsely, as an engineering baseline.
    pub fn detect(&self, input: &DetectionInput<'_>) -> DetectionReport {
        let meter = CostMeter::new();
        let high = input.high_reputed(&self.thresholds);
        let high_set: HashSet<NodeId> = high.iter().copied().collect();
        let mut checked: HashSet<(NodeId, NodeId)> = HashSet::new();
        let mut pairs = Vec::new();
        for &i in &high {
            for &j in &input.nodes {
                if j == i {
                    continue;
                }
                meter.element_check();
                let key = if i < j { (i, j) } else { (j, i) };
                if checked.contains(&key) {
                    continue;
                }
                // compute-then-test: the unoptimized manager evaluates the
                // full pair quantities for the cell, then applies the
                // threshold gates — including the partner's R_j ≥ T_R (C1),
                // which decides flagging but not the work done
                let flagged = self.check_pair(input, i, j, &meter);
                // mark a_ij and a_ji: whatever the outcome, this pair needs
                // no further checking when encountered from the other side
                checked.insert(key);
                if let Some(pair) = flagged {
                    if high_set.contains(&j) {
                        pairs.push(pair);
                    }
                }
            }
        }
        DetectionReport::new(pairs, meter.snapshot())
    }

    /// Rayon-parallel detection. Rows are examined concurrently without the
    /// cross-row marking optimization, so metered cost is up to 2× the
    /// sequential pass (each unordered pair may be examined from both
    /// sides; [`crate::report::normalize_pairs`] deduplicates); the reported
    /// pairs are identical and sorted before the report is built, so the
    /// output ordering never depends on thread scheduling.
    ///
    /// Note the iteration is sparse (each row visits only its raters), so a
    /// pair whose ratings flow in one direction only is reached from the
    /// *ratee's* row — both rows must therefore examine their raters, not
    /// just the lower-id side.
    pub fn detect_par(&self, input: &DetectionInput<'_>) -> DetectionReport {
        let meter = CostMeter::new();
        let high = input.high_reputed(&self.thresholds);
        let high_set: HashSet<NodeId> = high.iter().copied().collect();
        let meter_ref = &meter;
        let high_set_ref = &high_set;
        let mut pairs: Vec<SuspectPair> = high
            .par_iter()
            .flat_map_iter(|&i| {
                input.history.raters_of(i).iter().filter_map(move |&j| {
                    meter_ref.element_check();
                    if !high_set_ref.contains(&j) {
                        return None;
                    }
                    self.check_pair(input, i, j, meter_ref)
                })
            })
            .collect();
        crate::report::normalize_pairs(&mut pairs);
        DetectionReport::new(pairs, meter.snapshot())
    }

    /// [`BasicDetector::detect`] on the frozen CSR snapshot: the identical
    /// dense row-by-row procedure and metering, with every matrix probe an
    /// array access instead of a hash lookup. Produces a bit-identical
    /// [`DetectionReport`] (pairs *and* cost) to the legacy path — enforced
    /// by `tests/detection_equivalence.rs`. Generic over the
    /// [`SnapshotView`], so the same kernel runs on monolithic and sharded
    /// snapshots.
    pub fn detect_snapshot<V: SnapshotView>(
        &self,
        input: &SnapshotInput<'_, V>,
    ) -> DetectionReport {
        let meter = CostMeter::new();
        let snap = input.snapshot;
        let high = input.high_reputed_idx(&self.thresholds);
        let mut is_high = vec![false; snap.n()];
        for &i in &high {
            is_high[i as usize] = true;
        }
        // pre-size from the stored cell count: the dense walk marks every
        // examined pair, and nnz bounds the pairs with any rating evidence
        let mut checked = PairSet::with_capacity(snap.nnz().max(high.len() * 4));
        let mut pairs = Vec::new();
        for &i in &high {
            for &j in input.view() {
                if j == i {
                    continue;
                }
                meter.element_check();
                if checked.contains(i, j) {
                    continue;
                }
                let flagged = self.check_pair_snap(snap, i, j, &meter);
                checked.insert(i, j);
                if let Some(pair) = flagged {
                    if is_high[j as usize] {
                        pairs.push(pair);
                    }
                }
            }
        }
        DetectionReport::new(pairs, meter.snapshot())
    }

    /// Snapshot analogue of [`BasicDetector::check_pair`].
    pub(crate) fn check_pair_snap<V: SnapshotView>(
        &self,
        snap: &V,
        i: u32,
        j: u32,
        meter: &CostMeter,
    ) -> Option<SuspectPair> {
        let (id_i, id_j) = (snap.node_id(i), snap.node_id(j));
        if self.policy.require_mutual {
            let ev_j_boosts_i = self.check_direction_snap(snap, i, Some(j), meter)?;
            let ev_i_boosts_j = self.check_direction_snap(snap, j, Some(i), meter)?;
            Some(SuspectPair::new(id_j, id_i, Some(ev_j_boosts_i), Some(ev_i_boosts_j)))
        } else {
            let ev_j_boosts_i = self.check_direction_snap(snap, i, Some(j), meter);
            let ev_i_boosts_j = self.check_direction_snap(snap, j, Some(i), meter);
            if ev_j_boosts_i.is_none() && ev_i_boosts_j.is_none() {
                return None;
            }
            Some(SuspectPair::new(id_j, id_i, ev_j_boosts_i, ev_i_boosts_j))
        }
    }

    /// Snapshot analogue of [`BasicDetector::check_direction`]: one pass
    /// over the ratee's CSR row yields `N(j,i)` *and* the community sums —
    /// the pair's counters are picked up while scanning past them, so the
    /// separate hash probe of the legacy path disappears entirely. Metering
    /// is placed identically (row scan, then one element check). `rater` is
    /// `None` when the rater is not interned in this snapshot (a partitioned
    /// manager probing an unknown partner) — the scan then sees zero pair
    /// counters, exactly like the legacy hash lookup of an absent pair.
    pub(crate) fn check_direction_snap<V: SnapshotView>(
        &self,
        snap: &V,
        ratee: u32,
        rater: Option<u32>,
        meter: &CostMeter,
    ) -> Option<DirectionEvidence> {
        let (cols, cells) = snap.row(ratee);
        meter.row_scan(cols.len() as u64);
        let mut n_other = 0u64;
        let mut pos_other = 0u64;
        let mut pair = PairCounters::default();
        for (&other, cell) in cols.iter().zip(cells) {
            if Some(other) == rater {
                pair = *cell;
                continue;
            }
            if self.policy.community_excludes_frequent && self.thresholds.is_frequent(cell.total) {
                continue; // a fellow booster, not community (see policy docs)
            }
            n_other += cell.total;
            pos_other += cell.positive;
        }
        meter.element_check();
        if !self.thresholds.is_frequent(pair.total) {
            return None;
        }
        let a = pair.positive_fraction()?;
        if !self.thresholds.a_suspicious(a) {
            return None;
        }
        if n_other == 0 {
            return None; // no community evidence (see module docs)
        }
        let b = pos_other as f64 / n_other as f64;
        if !self.thresholds.b_suspicious(b) {
            return None;
        }
        Some(DirectionEvidence {
            pair_ratings: pair.total,
            fraction_a: Some(a),
            fraction_b: Some(b),
            signed_reputation: snap.signed(ratee),
        })
    }

    /// Full examination of the unordered pair `{i, j}`. Under the strict
    /// policy both directions must be suspicious; under the extended policy
    /// one confirmed boosting direction implicates the pair.
    fn check_pair(
        &self,
        input: &DetectionInput<'_>,
        i: NodeId,
        j: NodeId,
        meter: &CostMeter,
    ) -> Option<SuspectPair> {
        if self.policy.require_mutual {
            let ev_j_boosts_i = self.check_direction(input, i, j, meter)?;
            let ev_i_boosts_j = self.check_direction(input, j, i, meter)?;
            Some(SuspectPair::new(j, i, Some(ev_j_boosts_i), Some(ev_i_boosts_j)))
        } else {
            let ev_j_boosts_i = self.check_direction(input, i, j, meter);
            let ev_i_boosts_j = self.check_direction(input, j, i, meter);
            if ev_j_boosts_i.is_none() && ev_i_boosts_j.is_none() {
                return None;
            }
            Some(SuspectPair::new(j, i, ev_j_boosts_i, ev_i_boosts_j))
        }
    }

    /// Direction test: is `ratee`'s high reputation mainly caused by
    /// `rater`'s frequent deviating ratings?
    ///
    /// The quantities `N(−j,i)` / `N⁺(−j,i)` are computed by an
    /// *unconditional* scan of `ratee`'s full rater row — the paper's
    /// unoptimized method "needs to scan all of its raters for rating
    /// values and frequency for each rater" (§V.C); gating that scan behind
    /// the cheap frequency/`a` tests is exactly the kind of shortcut the
    /// Optimized method formalizes, so the Basic detector deliberately does
    /// not take it. The threshold tests are applied *after* the scan; the
    /// detected pair set is unchanged, only the metered cost reflects the
    /// `O(m·n²)` procedure.
    pub(crate) fn check_direction(
        &self,
        input: &DetectionInput<'_>,
        ratee: NodeId,
        rater: NodeId,
        meter: &CostMeter,
    ) -> Option<DirectionEvidence> {
        let h = input.history;
        // the expensive part: scan every other rater of `ratee` to obtain
        // N⁺(−j,i) and N(−j,i)
        let raters = h.raters_of(ratee);
        meter.row_scan(raters.len() as u64);
        let mut n_other = 0u64;
        let mut pos_other = 0u64;
        for &other in raters {
            if other == rater {
                continue;
            }
            let c = h.pair(other, ratee);
            if self.policy.community_excludes_frequent && self.thresholds.is_frequent(c.total) {
                continue; // a fellow booster, not community (see policy docs)
            }
            n_other += c.total;
            pos_other += c.positive;
        }
        meter.element_check();
        let pair = h.pair(rater, ratee);
        if !self.thresholds.is_frequent(pair.total) {
            return None;
        }
        let a = pair.positive_fraction()?;
        if !self.thresholds.a_suspicious(a) {
            return None;
        }
        if n_other == 0 {
            return None; // no community evidence (see module docs)
        }
        let b = pos_other as f64 / n_other as f64;
        if !self.thresholds.b_suspicious(b) {
            return None;
        }
        Some(DirectionEvidence {
            pair_ratings: pair.total,
            fraction_a: Some(a),
            fraction_b: Some(b),
            signed_reputation: h.signed_reputation(ratee),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collusion_reputation::history::InteractionHistory;
    use collusion_reputation::id::SimTime;
    use collusion_reputation::rating::Rating;
    use collusion_reputation::snapshot::DetectionSnapshot;

    /// Build the canonical collusion scenario:
    /// colluders c1, c2 rate each other +1 `boost` times;
    /// the community (raters 10..10+others) rates them −1 `community` times;
    /// honest nodes h3, h4 trade `honest` mutual positives and get community
    /// positives too.
    fn scenario(boost: u64, community: u64) -> (InteractionHistory, Vec<NodeId>) {
        let mut h = InteractionHistory::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        // colluders 1 and 2
        for _ in 0..boost {
            h.record(Rating::positive(NodeId(1), NodeId(2), tick()));
            h.record(Rating::positive(NodeId(2), NodeId(1), tick()));
        }
        for k in 0..community {
            let rater = NodeId(10 + (k % 5));
            h.record(Rating::negative(rater, NodeId(1), tick()));
            h.record(Rating::negative(rater, NodeId(2), tick()));
        }
        // honest pair 3 and 4: occasional mutual positives + community praise
        for _ in 0..3 {
            h.record(Rating::positive(NodeId(3), NodeId(4), tick()));
            h.record(Rating::positive(NodeId(4), NodeId(3), tick()));
        }
        for k in 0..community.max(4) {
            let rater = NodeId(10 + (k % 5));
            h.record(Rating::positive(rater, NodeId(3), tick()));
            h.record(Rating::positive(rater, NodeId(4), tick()));
        }
        let mut nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
        nodes.extend((10..15).map(NodeId));
        (h, nodes)
    }

    fn thresholds() -> Thresholds {
        // T_R = 1.0 on signed sums: any net-positive node is "high-reputed"
        Thresholds::new(1.0, 20, 0.8, 0.2)
    }

    #[test]
    fn detects_the_colluding_pair() {
        let (h, nodes) = scenario(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert_eq!(report.pair_ids(), vec![(NodeId(1), NodeId(2))]);
        let p = &report.pairs[0];
        let fwd = p.low_boosts_high.unwrap();
        assert_eq!(fwd.pair_ratings, 30);
        assert!(fwd.fraction_a.unwrap() >= 0.8);
        assert!(fwd.fraction_b.unwrap() < 0.2);
    }

    #[test]
    fn honest_pair_not_flagged() {
        let (h, nodes) = scenario(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert!(!report.is_colluder(NodeId(3)));
        assert!(!report.is_colluder(NodeId(4)));
    }

    #[test]
    fn infrequent_mutual_praise_not_flagged() {
        // below T_N = 20 mutual ratings → no collusion
        let (h, nodes) = scenario(10, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn low_reputed_colluders_skipped() {
        // community drowns the boost: colluders end with negative sums,
        // so the T_R filter (C1) never examines them
        let (h, nodes) = scenario(25, 40);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty());
        assert!(input.signed_reputation(NodeId(1)) < 0);
    }

    #[test]
    fn one_directional_boost_is_not_collusion() {
        // n1 showers n2 with praise but n2 never reciprocates
        let mut h = InteractionHistory::new();
        for t in 0..30 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
        }
        for t in 0..5 {
            h.record(Rating::negative(NodeId(9), NodeId(2), SimTime(100 + t)));
            h.record(Rating::positive(NodeId(9), NodeId(1), SimTime(200 + t)));
        }
        let nodes = vec![NodeId(1), NodeId(2), NodeId(9)];
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn no_community_evidence_means_no_detection() {
        // colluders only rated by each other: b undefined → skip
        let mut h = InteractionHistory::new();
        for t in 0..30 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
            h.record(Rating::positive(NodeId(2), NodeId(1), SimTime(t)));
        }
        let nodes = vec![NodeId(1), NodeId(2)];
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert!(report.pairs.is_empty());
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let (h, nodes) = scenario(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let det = BasicDetector::new(thresholds());
        let seq = det.detect(&input);
        let par = det.detect_par(&input);
        assert_eq!(seq.pair_ids(), par.pair_ids());
    }

    #[test]
    fn snapshot_path_is_bit_identical() {
        let (h, nodes) = scenario(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let snap = DetectionSnapshot::build(&h, &nodes);
        let sinput = SnapshotInput::from_signed(&snap, &nodes);
        for policy in [DetectionPolicy::STRICT, DetectionPolicy::EXTENDED] {
            let det = BasicDetector::with_policy(thresholds(), policy);
            let legacy = det.detect(&input);
            let fast = det.detect_snapshot(&sinput);
            assert_eq!(legacy.pairs, fast.pairs);
            assert_eq!(legacy.cost, fast.cost);
        }
    }

    #[test]
    fn parallel_extended_catches_one_directional_pairs() {
        // n1 showers n2 with praise; under the extended policy that alone
        // implicates the pair, and the sparse parallel path must reach it
        // from n2's row (regression test: a lower-id-only filter missed it)
        let mut h = InteractionHistory::new();
        for t in 0..30 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
        }
        for t in 0..5 {
            h.record(Rating::negative(NodeId(9), NodeId(2), SimTime(100 + t)));
            h.record(Rating::positive(NodeId(9), NodeId(1), SimTime(200 + t)));
        }
        let nodes = vec![NodeId(1), NodeId(2), NodeId(9)];
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let det = BasicDetector::with_policy(thresholds(), DetectionPolicy::EXTENDED);
        let seq = det.detect(&input);
        let par = det.detect_par(&input);
        assert_eq!(seq.pair_ids(), vec![(NodeId(1), NodeId(2))]);
        assert_eq!(seq.pair_ids(), par.pair_ids());
    }

    #[test]
    fn cost_includes_row_scans() {
        let (h, nodes) = scenario(30, 5);
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert!(report.cost.row_scans >= 2, "both directions scanned");
        assert!(report.cost.scanned_elements > 0);
        assert!(report.cost.element_checks > 0);
    }

    #[test]
    fn multiple_colluding_pairs_all_found() {
        let mut h = InteractionHistory::new();
        let mut t = 0u64;
        let mut tick = || {
            t += 1;
            SimTime(t)
        };
        for (a, b) in [(1u64, 2u64), (5, 6), (7, 8)] {
            for _ in 0..25 {
                h.record(Rating::positive(NodeId(a), NodeId(b), tick()));
                h.record(Rating::positive(NodeId(b), NodeId(a), tick()));
            }
            for k in 0..4 {
                h.record(Rating::negative(NodeId(20 + k), NodeId(a), tick()));
                h.record(Rating::negative(NodeId(20 + k), NodeId(b), tick()));
            }
        }
        let mut nodes: Vec<NodeId> = vec![1, 2, 5, 6, 7, 8].into_iter().map(NodeId).collect();
        nodes.extend((20..24).map(NodeId));
        let input = DetectionInput::from_signed_history(&h, &nodes);
        let report = BasicDetector::new(thresholds()).detect(&input);
        assert_eq!(
            report.pair_ids(),
            vec![(NodeId(1), NodeId(2)), (NodeId(5), NodeId(6)), (NodeId(7), NodeId(8)),]
        );
    }
}
