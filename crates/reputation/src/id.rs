//! Node identifiers and simulation time.
//!
//! Every participant in a reputation system — buyer, seller, peer, reputation
//! manager — is addressed by a [`NodeId`]. Time is abstract ([`SimTime`]):
//! the trace analysis interprets one tick as a day, the P2P simulator as a
//! query cycle. The paper's period `T` ("the time period for updating global
//! reputations", Table I) is a half-open interval of ticks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (peer, buyer, seller or manager).
///
/// The paper indexes nodes `n_1 … n_n`; we keep the same convention and use
/// small consecutive integers in simulations so that figures such as
/// "pretrusted node IDs 1–3, colluder IDs 4–11" read identically.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The raw integer id.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

/// Abstract simulation timestamp (monotonically non-decreasing tick).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The raw tick value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The tick `delta` ticks later.
    #[inline]
    pub fn plus(self, delta: u64) -> SimTime {
        SimTime(self.0 + delta)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Half-open time window `[start, end)` used to select the ratings of one
/// reputation-update period `T`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First tick included.
    pub start: SimTime,
    /// First tick excluded.
    pub end: SimTime,
}

impl TimeWindow {
    /// Construct a window; `start` must not exceed `end`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "window start {start} after end {end}");
        TimeWindow { start, end }
    }

    /// The window `[0, end)`.
    pub fn until(end: SimTime) -> Self {
        TimeWindow::new(SimTime::ZERO, end)
    }

    /// Whether `t` falls inside the window.
    #[inline]
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Number of ticks covered.
    #[inline]
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether the window covers no ticks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_matches_paper_convention() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn node_id_ordering_is_numeric() {
        assert!(NodeId(2) < NodeId(10));
        assert_eq!(NodeId::from(3u64), NodeId(3));
        assert_eq!(NodeId(3).raw(), 3);
    }

    #[test]
    fn sim_time_plus_advances() {
        assert_eq!(SimTime(5).plus(3), SimTime(8));
        assert_eq!(SimTime::ZERO.plus(0), SimTime(0));
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TimeWindow::new(SimTime(2), SimTime(5));
        assert!(!w.contains(SimTime(1)));
        assert!(w.contains(SimTime(2)));
        assert!(w.contains(SimTime(4)));
        assert!(!w.contains(SimTime(5)));
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn window_until_starts_at_zero() {
        let w = TimeWindow::until(SimTime(4));
        assert!(w.contains(SimTime(0)));
        assert!(!w.contains(SimTime(4)));
    }

    #[test]
    fn empty_window_contains_nothing() {
        let w = TimeWindow::new(SimTime(3), SimTime(3));
        assert!(w.is_empty());
        assert!(!w.contains(SimTime(3)));
    }

    #[test]
    #[should_panic(expected = "window start")]
    fn inverted_window_panics() {
        let _ = TimeWindow::new(SimTime(5), SimTime(2));
    }
}
