//! Interaction-history bookkeeping — the paper's Table I.
//!
//! For a ratee `n_i` and rater `n_j` within one reputation-update period `T`,
//! the paper defines:
//!
//! | notation       | meaning                                                  | here |
//! |----------------|----------------------------------------------------------|------|
//! | `N_i`          | all ratings for `n_i`                                    | [`InteractionHistory::ratings_for`] |
//! | `N(j,i)`       | ratings from `n_j` for `n_i`                             | [`InteractionHistory::ratings_from_to`] |
//! | `N(−j,i)`      | ratings from all nodes except `n_j` for `n_i`            | [`InteractionHistory::ratings_excluding`] |
//! | `N⁺(j,i)`      | positive ratings from `n_j` for `n_i`                    | [`InteractionHistory::positive_from_to`] |
//! | `N⁺(−j,i)`     | positive ratings from all except `n_j` for `n_i`         | [`InteractionHistory::positive_excluding`] |
//! | `N⁻(j,i)`      | negative ratings from `n_j` for `n_i`                    | [`InteractionHistory::negative_from_to`] |
//! | `N⁻(−j,i)`     | negative ratings from all except `n_j` for `n_i`         | [`InteractionHistory::negative_excluding`] |
//! | `a`            | fraction of positives among ratings from `n_j` for `n_i` | [`InteractionHistory::fraction_a`] |
//! | `b`            | fraction of positives among ratings from others for `n_i`| [`InteractionHistory::fraction_b`] |
//!
//! The structure is incremental ([`InteractionHistory::record`]) so reputation
//! managers can fold ratings in as they arrive; period scoping is handled by
//! building one history per window (see `RatingLog::history_in`).

use crate::id::NodeId;
use crate::rating::{Rating, RatingValue};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Counters for one ordered (rater → ratee) pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairCounters {
    /// Total ratings from the rater for the ratee (`N(j,i)`).
    pub total: u64,
    /// Positive subset (`N⁺(j,i)`).
    pub positive: u64,
    /// Negative subset (`N⁻(j,i)`).
    pub negative: u64,
}

/// Clamp a `u64` counter into `i64` range for signed arithmetic.
#[inline]
fn clamped_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

impl PairCounters {
    /// Neutral ratings (neither positive nor negative). Saturating: a cell
    /// whose splits exceed its total (only possible via corrupt or hostile
    /// input) reads as zero neutral instead of wrapping.
    #[inline]
    pub fn neutral(&self) -> u64 {
        self.total.saturating_sub(self.positive).saturating_sub(self.negative)
    }

    /// Fraction of positive ratings, `None` if the pair has no ratings.
    #[inline]
    pub fn positive_fraction(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.positive as f64 / self.total as f64)
        }
    }

    /// Signed contribution to the ratee's reputation (`#pos − #neg`),
    /// saturating at the `i64` limits.
    #[inline]
    pub fn signed(&self) -> i64 {
        clamped_i64(self.positive).saturating_sub(clamped_i64(self.negative))
    }

    /// Fold one rating value in (`N(j,i) += 1` plus the sign split) — the
    /// increment [`InteractionHistory::record`] applies, exposed for
    /// delta-accumulating callers like `epoch::EpochBuffer`.
    #[inline]
    pub fn accumulate(&mut self, value: RatingValue) {
        self.add(value);
    }

    /// Add another counter cell element-wise (merging an epoch delta into a
    /// base cell). Saturating, so replayed-duplicate or hostile streams can
    /// pin counters at the ceiling instead of wrapping them back to zero.
    #[inline]
    pub fn merge(&mut self, other: &PairCounters) {
        self.total = self.total.saturating_add(other.total);
        self.positive = self.positive.saturating_add(other.positive);
        self.negative = self.negative.saturating_add(other.negative);
    }

    fn add(&mut self, value: RatingValue) {
        self.total = self.total.saturating_add(1);
        match value {
            RatingValue::Positive => self.positive = self.positive.saturating_add(1),
            RatingValue::Negative => self.negative = self.negative.saturating_add(1),
            RatingValue::Neutral => {}
        }
    }
}

/// Aggregate counters for one ratee across all raters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeTotals {
    /// Total ratings received (`N_i`).
    pub total: u64,
    /// Positive ratings received.
    pub positive: u64,
    /// Negative ratings received.
    pub negative: u64,
}

impl NodeTotals {
    /// Signed (eBay-style) reputation `#pos − #neg`, saturating at the
    /// `i64` limits.
    #[inline]
    pub fn signed(&self) -> i64 {
        clamped_i64(self.positive).saturating_sub(clamped_i64(self.negative))
    }

    /// Amazon-style positive fraction, `None` when unrated.
    #[inline]
    pub fn positive_fraction(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.positive as f64 / self.total as f64)
        }
    }
}

/// Incremental interaction history for one reputation-update period `T`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InteractionHistory {
    /// (rater, ratee) → counters.
    pairs: HashMap<(NodeId, NodeId), PairCounters>,
    /// ratee → aggregate counters.
    totals: HashMap<NodeId, NodeTotals>,
    /// ratee → list of distinct raters, for detector row scans.
    raters_of: HashMap<NodeId, Vec<NodeId>>,
    /// Number of ratings folded in.
    recorded: u64,
    /// Ratees whose rows changed since the last [`InteractionHistory::take_dirty`];
    /// drives incremental `DetectionSnapshot::refresh`.
    #[serde(default)]
    dirty: BTreeSet<NodeId>,
}

impl InteractionHistory {
    /// Empty history.
    pub fn new() -> Self {
        InteractionHistory::default()
    }

    /// Fold one rating in. Self-ratings are ignored (returns `false`).
    pub fn record(&mut self, rating: Rating) -> bool {
        if rating.is_self_rating() {
            return false;
        }
        let pair = self.pairs.entry((rating.rater, rating.ratee)).or_default();
        if pair.total == 0 {
            self.raters_of.entry(rating.ratee).or_default().push(rating.rater);
        }
        pair.add(rating.value);
        let tot = self.totals.entry(rating.ratee).or_default();
        tot.total = tot.total.saturating_add(1);
        match rating.value {
            RatingValue::Positive => tot.positive = tot.positive.saturating_add(1),
            RatingValue::Negative => tot.negative = tot.negative.saturating_add(1),
            RatingValue::Neutral => {}
        }
        self.recorded = self.recorded.saturating_add(1);
        self.dirty.insert(rating.ratee);
        true
    }

    /// Insert a whole counter cell for the ordered pair (rater → ratee),
    /// merging with any existing cell and updating the ratee's aggregate
    /// totals. This is the bulk-restore path checkpoint recovery uses to
    /// rebuild a history from serialized [`PairCounters`] rows; counters
    /// rebuilt this way are bit-identical to the originals. Self-pairs and
    /// empty cells are ignored (returns `false`).
    pub fn insert_pair_counters(
        &mut self,
        rater: NodeId,
        ratee: NodeId,
        counters: PairCounters,
    ) -> bool {
        if rater == ratee || counters.total == 0 {
            return false;
        }
        let pair = self.pairs.entry((rater, ratee)).or_default();
        if pair.total == 0 {
            self.raters_of.entry(ratee).or_default().push(rater);
        }
        pair.merge(&counters);
        let tot = self.totals.entry(ratee).or_default();
        tot.total = tot.total.saturating_add(counters.total);
        tot.positive = tot.positive.saturating_add(counters.positive);
        tot.negative = tot.negative.saturating_add(counters.negative);
        self.recorded = self.recorded.saturating_add(counters.total);
        self.dirty.insert(ratee);
        true
    }

    /// Drain the set of ratees whose rows changed since the last call,
    /// ascending. Feed the result to `DetectionSnapshot::refresh` to bring a
    /// snapshot up to date in O(changed rows).
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// The ratees currently marked dirty, without draining them.
    pub fn dirty_ratees(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dirty.iter().copied()
    }

    /// Forget all dirty marks (e.g. after a full snapshot rebuild).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Number of ratings folded in (excluding rejected self-ratings).
    #[inline]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// All ratees that received at least one rating.
    pub fn ratees(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.totals.keys().copied()
    }

    /// Distinct raters that rated `ratee`, in first-seen order.
    pub fn raters_of(&self, ratee: NodeId) -> &[NodeId] {
        self.raters_of.get(&ratee).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Counters for the ordered pair (rater → ratee), zero if absent.
    #[inline]
    pub fn pair(&self, rater: NodeId, ratee: NodeId) -> PairCounters {
        self.pairs.get(&(rater, ratee)).copied().unwrap_or_default()
    }

    /// Aggregate counters for `ratee`, zero if absent.
    #[inline]
    pub fn totals(&self, ratee: NodeId) -> NodeTotals {
        self.totals.get(&ratee).copied().unwrap_or_default()
    }

    // ----- Table I accessors -------------------------------------------------

    /// `N_i`: all ratings received by `ratee` in the period.
    #[inline]
    pub fn ratings_for(&self, ratee: NodeId) -> u64 {
        self.totals(ratee).total
    }

    /// `N(j,i)`: ratings from `rater` for `ratee`.
    #[inline]
    pub fn ratings_from_to(&self, rater: NodeId, ratee: NodeId) -> u64 {
        self.pair(rater, ratee).total
    }

    /// `N(−j,i)`: ratings for `ratee` from everyone except `rater`.
    #[inline]
    pub fn ratings_excluding(&self, rater: NodeId, ratee: NodeId) -> u64 {
        self.ratings_for(ratee) - self.ratings_from_to(rater, ratee)
    }

    /// `N⁺(j,i)`: positive ratings from `rater` for `ratee`.
    #[inline]
    pub fn positive_from_to(&self, rater: NodeId, ratee: NodeId) -> u64 {
        self.pair(rater, ratee).positive
    }

    /// `N⁺(−j,i)`: positive ratings for `ratee` from everyone except `rater`.
    #[inline]
    pub fn positive_excluding(&self, rater: NodeId, ratee: NodeId) -> u64 {
        self.totals(ratee).positive - self.positive_from_to(rater, ratee)
    }

    /// `N⁻(j,i)`: negative ratings from `rater` for `ratee`.
    #[inline]
    pub fn negative_from_to(&self, rater: NodeId, ratee: NodeId) -> u64 {
        self.pair(rater, ratee).negative
    }

    /// `N⁻(−j,i)`: negative ratings for `ratee` from everyone except `rater`.
    #[inline]
    pub fn negative_excluding(&self, rater: NodeId, ratee: NodeId) -> u64 {
        self.totals(ratee).negative - self.negative_from_to(rater, ratee)
    }

    /// `a`: fraction of positives among ratings from `rater` for `ratee`;
    /// `None` when the pair has no ratings.
    #[inline]
    pub fn fraction_a(&self, rater: NodeId, ratee: NodeId) -> Option<f64> {
        self.pair(rater, ratee).positive_fraction()
    }

    /// `b`: fraction of positives among ratings for `ratee` from everyone
    /// except `rater`; `None` when no such ratings exist.
    #[inline]
    pub fn fraction_b(&self, rater: NodeId, ratee: NodeId) -> Option<f64> {
        let n = self.ratings_excluding(rater, ratee);
        if n == 0 {
            None
        } else {
            Some(self.positive_excluding(rater, ratee) as f64 / n as f64)
        }
    }

    // ----- Reputation views --------------------------------------------------

    /// eBay-style signed reputation: `#pos − #neg` over all received ratings.
    #[inline]
    pub fn signed_reputation(&self, ratee: NodeId) -> i64 {
        self.totals(ratee).signed()
    }

    /// Amazon-style reputation: positive fraction over all received ratings.
    #[inline]
    pub fn positive_fraction(&self, ratee: NodeId) -> Option<f64> {
        self.totals(ratee).positive_fraction()
    }

    /// Iterate over every (rater, ratee, counters) triple.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, PairCounters)> + '_ {
        self.pairs.iter().map(|(&(j, i), &c)| (j, i, c))
    }

    /// Remove and return everything recorded *about* `ratee` — the ratings
    /// a departing reputation manager hands to the node's next owner.
    /// Ratings `ratee` issued about others stay behind.
    pub fn split_off_ratee(&mut self, ratee: NodeId) -> InteractionHistory {
        let mut out = InteractionHistory::new();
        let Some(raters) = self.raters_of.remove(&ratee) else {
            return out;
        };
        for rater in &raters {
            if let Some(c) = self.pairs.remove(&(*rater, ratee)) {
                out.pairs.insert((*rater, ratee), c);
            }
        }
        if let Some(totals) = self.totals.remove(&ratee) {
            self.recorded = self.recorded.saturating_sub(totals.total);
            out.recorded = totals.total;
            out.totals.insert(ratee, totals);
        }
        out.raters_of.insert(ratee, raters);
        self.dirty.insert(ratee);
        out.dirty.insert(ratee);
        out
    }

    /// Merge another history into this one (used to combine the views of
    /// several decentralized managers).
    pub fn merge(&mut self, other: &InteractionHistory) {
        for (&(rater, ratee), c) in &other.pairs {
            let pair = self.pairs.entry((rater, ratee)).or_default();
            if pair.total == 0 && c.total > 0 {
                self.raters_of.entry(ratee).or_default().push(rater);
            }
            pair.merge(c);
            self.dirty.insert(ratee);
        }
        for (&ratee, t) in &other.totals {
            let tot = self.totals.entry(ratee).or_default();
            tot.total = tot.total.saturating_add(t.total);
            tot.positive = tot.positive.saturating_add(t.positive);
            tot.negative = tot.negative.saturating_add(t.negative);
            self.dirty.insert(ratee);
        }
        self.recorded = self.recorded.saturating_add(other.recorded);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;

    fn hist(ratings: &[(u64, u64, i8)]) -> InteractionHistory {
        let mut h = InteractionHistory::new();
        for (t, &(j, i, v)) in ratings.iter().enumerate() {
            let value = match v {
                1 => RatingValue::Positive,
                0 => RatingValue::Neutral,
                -1 => RatingValue::Negative,
                _ => unreachable!(),
            };
            h.record(Rating::new(NodeId(j), NodeId(i), value, SimTime(t as u64)));
        }
        h
    }

    #[test]
    fn table_i_identities_hold_on_small_example() {
        // n1 rates n2: +,+,-   n3 rates n2: -,-   n1 rates n3: +
        let h = hist(&[(1, 2, 1), (1, 2, 1), (1, 2, -1), (3, 2, -1), (3, 2, -1), (1, 3, 1)]);
        let (n1, n2, n3) = (NodeId(1), NodeId(2), NodeId(3));
        assert_eq!(h.ratings_for(n2), 5);
        assert_eq!(h.ratings_from_to(n1, n2), 3);
        assert_eq!(h.ratings_excluding(n1, n2), 2);
        assert_eq!(h.positive_from_to(n1, n2), 2);
        assert_eq!(h.positive_excluding(n1, n2), 0);
        assert_eq!(h.negative_from_to(n1, n2), 1);
        assert_eq!(h.negative_excluding(n1, n2), 2);
        assert_eq!(h.fraction_a(n1, n2), Some(2.0 / 3.0));
        assert_eq!(h.fraction_b(n1, n2), Some(0.0));
        assert_eq!(h.ratings_for(n3), 1);
        assert_eq!(h.signed_reputation(n2), 2 - 3);
    }

    #[test]
    fn neutral_ratings_count_toward_totals_only() {
        let h = hist(&[(1, 2, 0), (1, 2, 1)]);
        let p = h.pair(NodeId(1), NodeId(2));
        assert_eq!(p.total, 2);
        assert_eq!(p.positive, 1);
        assert_eq!(p.negative, 0);
        assert_eq!(p.neutral(), 1);
        assert_eq!(h.signed_reputation(NodeId(2)), 1);
    }

    #[test]
    fn fractions_none_when_no_data() {
        let h = hist(&[(1, 2, 1)]);
        assert_eq!(h.fraction_a(NodeId(9), NodeId(2)), None);
        // only rater of n2 is n1, so excluding n1 leaves nothing:
        assert_eq!(h.fraction_b(NodeId(1), NodeId(2)), None);
        assert_eq!(h.positive_fraction(NodeId(9)), None);
    }

    #[test]
    fn self_ratings_ignored() {
        let mut h = InteractionHistory::new();
        assert!(!h.record(Rating::positive(NodeId(1), NodeId(1), SimTime(0))));
        assert_eq!(h.recorded(), 0);
        assert_eq!(h.ratings_for(NodeId(1)), 0);
    }

    #[test]
    fn raters_of_lists_distinct_raters_once() {
        let h = hist(&[(1, 2, 1), (1, 2, 1), (3, 2, -1)]);
        let raters = h.raters_of(NodeId(2));
        assert_eq!(raters, &[NodeId(1), NodeId(3)]);
        assert!(h.raters_of(NodeId(99)).is_empty());
    }

    #[test]
    fn merge_combines_counters() {
        let a = hist(&[(1, 2, 1), (3, 2, -1)]);
        let b = hist(&[(1, 2, 1), (4, 2, 1)]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.ratings_from_to(NodeId(1), NodeId(2)), 2);
        assert_eq!(m.ratings_for(NodeId(2)), 4);
        assert_eq!(m.recorded(), 4);
        // rater list contains 1, 3, 4 exactly once each
        let mut raters = m.raters_of(NodeId(2)).to_vec();
        raters.sort();
        assert_eq!(raters, vec![NodeId(1), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn ratees_iterates_rated_nodes() {
        let h = hist(&[(1, 2, 1), (1, 3, -1)]);
        let mut ratees: Vec<_> = h.ratees().collect();
        ratees.sort();
        assert_eq!(ratees, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn split_off_ratee_partitions_cleanly() {
        let mut h = hist(&[(1, 2, 1), (1, 2, -1), (3, 2, 1), (2, 3, 1), (1, 3, -1)]);
        let before_recorded = h.recorded();
        let about_2 = h.split_off_ratee(NodeId(2));
        // extracted view has exactly n2's received ratings
        assert_eq!(about_2.ratings_for(NodeId(2)), 3);
        assert_eq!(about_2.ratings_from_to(NodeId(1), NodeId(2)), 2);
        assert_eq!(about_2.signed_reputation(NodeId(2)), 1);
        assert_eq!(about_2.recorded(), 3);
        // the remainder kept everything else, including n2's issued ratings
        assert_eq!(h.ratings_for(NodeId(2)), 0);
        assert!(h.raters_of(NodeId(2)).is_empty());
        assert_eq!(h.ratings_from_to(NodeId(2), NodeId(3)), 1);
        assert_eq!(h.recorded(), before_recorded - 3);
        // splitting again is a no-op
        let again = h.split_off_ratee(NodeId(2));
        assert_eq!(again.recorded(), 0);
        // re-merging restores the original counters
        h.merge(&about_2);
        assert_eq!(h.recorded(), before_recorded);
        assert_eq!(h.ratings_for(NodeId(2)), 3);
    }

    #[test]
    fn dirty_tracking_follows_mutations() {
        let mut h = hist(&[(1, 2, 1), (3, 4, -1)]);
        assert_eq!(h.take_dirty(), vec![NodeId(2), NodeId(4)]);
        assert_eq!(h.take_dirty(), Vec::<NodeId>::new());
        h.record(Rating::positive(NodeId(5), NodeId(2), SimTime(10)));
        assert_eq!(h.dirty_ratees().collect::<Vec<_>>(), vec![NodeId(2)]);
        // merge marks the merged-in ratees dirty
        let other = hist(&[(1, 4, 1)]);
        h.merge(&other);
        assert_eq!(h.take_dirty(), vec![NodeId(2), NodeId(4)]);
        // split_off_ratee marks the departing ratee dirty on both sides
        let slice = h.split_off_ratee(NodeId(2));
        assert_eq!(h.dirty_ratees().collect::<Vec<_>>(), vec![NodeId(2)]);
        assert_eq!(slice.dirty_ratees().collect::<Vec<_>>(), vec![NodeId(2)]);
        h.clear_dirty();
        assert_eq!(h.dirty_ratees().count(), 0);
    }

    #[test]
    fn saturating_counters_never_wrap() {
        let mut c = PairCounters { total: u64::MAX - 1, positive: u64::MAX, negative: 0 };
        c.accumulate(RatingValue::Positive);
        c.accumulate(RatingValue::Positive);
        assert_eq!(c.total, u64::MAX);
        assert_eq!(c.positive, u64::MAX);
        let other = PairCounters { total: 10, positive: 10, negative: 0 };
        c.merge(&other);
        assert_eq!(c.total, u64::MAX);
        assert_eq!(c.positive, u64::MAX);
        // splits exceeding total (corrupt cell) read as zero neutral
        let corrupt = PairCounters { total: 1, positive: 5, negative: 5 };
        assert_eq!(corrupt.neutral(), 0);
        // signed saturates instead of overflowing the i64 conversion
        let huge = PairCounters { total: u64::MAX, positive: u64::MAX, negative: 0 };
        assert_eq!(huge.signed(), i64::MAX);
        let tot = NodeTotals { total: u64::MAX, positive: 0, negative: u64::MAX };
        assert_eq!(tot.signed(), i64::MIN + 1);
    }

    #[test]
    fn insert_pair_counters_matches_recording() {
        let reference = hist(&[(1, 2, 1), (1, 2, -1), (3, 2, 1), (1, 3, 0)]);
        let mut rebuilt = InteractionHistory::new();
        let mut cells: Vec<_> = reference.iter_pairs().collect();
        cells.sort_by_key(|&(j, i, _)| (i, j));
        for (rater, ratee, c) in cells {
            assert!(rebuilt.insert_pair_counters(rater, ratee, c));
        }
        assert_eq!(rebuilt.recorded(), reference.recorded());
        for (rater, ratee, c) in reference.iter_pairs() {
            assert_eq!(rebuilt.pair(rater, ratee), c);
        }
        for ratee in reference.ratees() {
            assert_eq!(rebuilt.totals(ratee), reference.totals(ratee));
        }
        // self-pairs and empty cells rejected
        assert!(!rebuilt.insert_pair_counters(NodeId(7), NodeId(7), PairCounters::default()));
        assert!(!rebuilt.insert_pair_counters(NodeId(7), NodeId(8), PairCounters::default()));
    }

    #[test]
    fn signed_identity_matches_pair_sum() {
        let h = hist(&[(1, 2, 1), (1, 2, -1), (3, 2, 1), (4, 2, 0)]);
        let total: i64 =
            h.raters_of(NodeId(2)).iter().map(|&j| h.pair(j, NodeId(2)).signed()).sum();
        assert_eq!(total, h.signed_reputation(NodeId(2)));
    }
}
