//! Ratings and rating logs.
//!
//! The paper adopts the eBay/EigenTrust convention: each interaction is
//! rated −1, 0 or +1 ([`RatingValue`]). Amazon's 1–5 star feedback maps onto
//! this scale (§III: "The scores 1 and 2 are classified as negative rating
//! (−1), 3 as neutral rating (0) and 4 and 5 as positive rating (1)").
//!
//! A [`RatingLog`] is an append-only sequence of [`Rating`]s — the raw
//! material both the trace analysis (§III) and the detection methods (§IV)
//! consume.

use crate::history::InteractionHistory;
use crate::id::{NodeId, SimTime, TimeWindow};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An externally supplied rating value that fails validation at the API
/// boundary. Hostile or buggy clients send these; they must be rejected
/// before they can poison counters, not folded in silently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RatingValueError {
    /// An Amazon star score outside 1..=5.
    OutOfRangeStars(u8),
    /// A continuous score or threshold that is NaN or infinite.
    NonFinite(f64),
}

impl fmt::Display for RatingValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatingValueError::OutOfRangeStars(s) => {
                write!(f, "Amazon star score must be 1..=5, got {s}")
            }
            RatingValueError::NonFinite(v) => {
                write!(f, "rating score must be finite, got {v}")
            }
        }
    }
}

impl std::error::Error for RatingValueError {}

/// The tri-valued local reputation rating of one interaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RatingValue {
    /// Poor service (scores 1–2 on Amazon's 5-point scale).
    Negative,
    /// Indifferent service (score 3).
    Neutral,
    /// Good service (scores 4–5).
    Positive,
}

impl RatingValue {
    /// The signed numeric value −1 / 0 / +1 used in reputation sums.
    #[inline]
    pub fn signed(self) -> i64 {
        match self {
            RatingValue::Negative => -1,
            RatingValue::Neutral => 0,
            RatingValue::Positive => 1,
        }
    }

    /// Classify an Amazon 1–5 star score, rejecting out-of-range scores.
    pub fn try_from_amazon_stars(stars: u8) -> Result<Self, RatingValueError> {
        match stars {
            1 | 2 => Ok(RatingValue::Negative),
            3 => Ok(RatingValue::Neutral),
            4 | 5 => Ok(RatingValue::Positive),
            _ => Err(RatingValueError::OutOfRangeStars(stars)),
        }
    }

    /// Classify an Amazon 1–5 star score. Panics on scores outside 1–5;
    /// use [`RatingValue::try_from_amazon_stars`] for untrusted input.
    pub fn from_amazon_stars(stars: u8) -> Self {
        match RatingValue::try_from_amazon_stars(stars) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Binarize a continuous local reputation score against the reputation
    /// threshold `t_r`, rejecting NaN and infinite inputs — a NaN score
    /// compares false against any threshold and would otherwise be silently
    /// classified negative, letting a hostile client smuggle garbage past
    /// the boundary.
    pub fn try_from_continuous(score: f64, t_r: f64) -> Result<Self, RatingValueError> {
        if !score.is_finite() {
            return Err(RatingValueError::NonFinite(score));
        }
        if !t_r.is_finite() {
            return Err(RatingValueError::NonFinite(t_r));
        }
        if score >= t_r {
            Ok(RatingValue::Positive)
        } else {
            Ok(RatingValue::Negative)
        }
    }

    /// Binarize a continuous local reputation score against the reputation
    /// threshold `t_r` (§IV.A: "we regard local reputation rating with
    /// ≥ T_R as 1, and local reputation rating with < T_R as −1").
    /// Panics on NaN/infinite inputs; use
    /// [`RatingValue::try_from_continuous`] for untrusted input.
    pub fn from_continuous(score: f64, t_r: f64) -> Self {
        match RatingValue::try_from_continuous(score, t_r) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// True for [`RatingValue::Positive`].
    #[inline]
    pub fn is_positive(self) -> bool {
        matches!(self, RatingValue::Positive)
    }

    /// True for [`RatingValue::Negative`].
    #[inline]
    pub fn is_negative(self) -> bool {
        matches!(self, RatingValue::Negative)
    }
}

impl fmt::Display for RatingValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatingValue::Negative => write!(f, "-1"),
            RatingValue::Neutral => write!(f, "0"),
            RatingValue::Positive => write!(f, "+1"),
        }
    }
}

/// One rating event: `rater` evaluates a transaction served by `ratee`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rating {
    /// The node issuing the rating (buyer / client).
    pub rater: NodeId,
    /// The node being rated (seller / server).
    pub ratee: NodeId,
    /// The tri-valued judgement.
    pub value: RatingValue,
    /// When the rating was submitted.
    pub time: SimTime,
}

impl Rating {
    /// Construct a rating.
    pub fn new(rater: NodeId, ratee: NodeId, value: RatingValue, time: SimTime) -> Self {
        Rating { rater, ratee, value, time }
    }

    /// Shorthand for a positive rating.
    pub fn positive(rater: NodeId, ratee: NodeId, time: SimTime) -> Self {
        Rating::new(rater, ratee, RatingValue::Positive, time)
    }

    /// Shorthand for a neutral rating.
    pub fn neutral(rater: NodeId, ratee: NodeId, time: SimTime) -> Self {
        Rating::new(rater, ratee, RatingValue::Neutral, time)
    }

    /// Shorthand for a negative rating.
    pub fn negative(rater: NodeId, ratee: NodeId, time: SimTime) -> Self {
        Rating::new(rater, ratee, RatingValue::Negative, time)
    }

    /// Whether the rating is a self-rating (always suspicious; reputation
    /// systems reject these at ingestion).
    #[inline]
    pub fn is_self_rating(&self) -> bool {
        self.rater == self.ratee
    }
}

/// An append-only log of ratings, ordered by insertion.
///
/// The log is the ground truth from which period-scoped
/// [`InteractionHistory`] views are derived (the paper's period `T`).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RatingLog {
    ratings: Vec<Rating>,
}

impl RatingLog {
    /// Empty log.
    pub fn new() -> Self {
        RatingLog::default()
    }

    /// Empty log with pre-reserved capacity (avoids reallocation for large
    /// synthetic traces).
    pub fn with_capacity(cap: usize) -> Self {
        RatingLog { ratings: Vec::with_capacity(cap) }
    }

    /// Append a rating. Self-ratings are rejected (returns `false`), matching
    /// real reputation systems which never let a node rate itself.
    pub fn push(&mut self, rating: Rating) -> bool {
        if rating.is_self_rating() {
            return false;
        }
        self.ratings.push(rating);
        true
    }

    /// Append many ratings.
    pub fn extend<I: IntoIterator<Item = Rating>>(&mut self, iter: I) {
        for r in iter {
            self.push(r);
        }
    }

    /// Number of ratings recorded.
    pub fn len(&self) -> usize {
        self.ratings.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ratings.is_empty()
    }

    /// All ratings, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Rating> {
        self.ratings.iter()
    }

    /// All ratings as a slice.
    pub fn as_slice(&self) -> &[Rating] {
        &self.ratings
    }

    /// Ratings whose timestamp falls in `window`.
    pub fn in_window(&self, window: TimeWindow) -> impl Iterator<Item = &Rating> {
        self.ratings.iter().filter(move |r| window.contains(r.time))
    }

    /// Ratings received by `ratee`.
    pub fn received_by(&self, ratee: NodeId) -> impl Iterator<Item = &Rating> {
        self.ratings.iter().filter(move |r| r.ratee == ratee)
    }

    /// Ratings issued by `rater`.
    pub fn issued_by(&self, rater: NodeId) -> impl Iterator<Item = &Rating> {
        self.ratings.iter().filter(move |r| r.rater == rater)
    }

    /// Build the aggregate [`InteractionHistory`] over the whole log.
    pub fn history(&self) -> InteractionHistory {
        let mut h = InteractionHistory::new();
        for r in &self.ratings {
            h.record(*r);
        }
        h
    }

    /// Build the [`InteractionHistory`] restricted to one period `T`.
    pub fn history_in(&self, window: TimeWindow) -> InteractionHistory {
        let mut h = InteractionHistory::new();
        for r in self.in_window(window) {
            h.record(*r);
        }
        h
    }
}

impl FromIterator<Rating> for RatingLog {
    fn from_iter<T: IntoIterator<Item = Rating>>(iter: T) -> Self {
        let mut log = RatingLog::new();
        log.extend(iter);
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(rater: u64, ratee: u64, v: RatingValue, t: u64) -> Rating {
        Rating::new(NodeId(rater), NodeId(ratee), v, SimTime(t))
    }

    #[test]
    fn signed_values_match_ebay_scale() {
        assert_eq!(RatingValue::Negative.signed(), -1);
        assert_eq!(RatingValue::Neutral.signed(), 0);
        assert_eq!(RatingValue::Positive.signed(), 1);
    }

    #[test]
    fn amazon_star_classification_matches_paper() {
        assert_eq!(RatingValue::from_amazon_stars(1), RatingValue::Negative);
        assert_eq!(RatingValue::from_amazon_stars(2), RatingValue::Negative);
        assert_eq!(RatingValue::from_amazon_stars(3), RatingValue::Neutral);
        assert_eq!(RatingValue::from_amazon_stars(4), RatingValue::Positive);
        assert_eq!(RatingValue::from_amazon_stars(5), RatingValue::Positive);
    }

    #[test]
    #[should_panic(expected = "must be 1..=5")]
    fn amazon_star_zero_rejected() {
        let _ = RatingValue::from_amazon_stars(0);
    }

    #[test]
    fn continuous_binarization_uses_threshold() {
        assert_eq!(RatingValue::from_continuous(0.05, 0.05), RatingValue::Positive);
        assert_eq!(RatingValue::from_continuous(0.049, 0.05), RatingValue::Negative);
    }

    #[test]
    fn try_constructors_reject_hostile_values() {
        assert_eq!(
            RatingValue::try_from_amazon_stars(0),
            Err(RatingValueError::OutOfRangeStars(0))
        );
        assert_eq!(
            RatingValue::try_from_amazon_stars(6),
            Err(RatingValueError::OutOfRangeStars(6))
        );
        assert_eq!(RatingValue::try_from_amazon_stars(3), Ok(RatingValue::Neutral));
        assert!(matches!(
            RatingValue::try_from_continuous(f64::NAN, 0.5),
            Err(RatingValueError::NonFinite(_))
        ));
        assert!(matches!(
            RatingValue::try_from_continuous(f64::INFINITY, 0.5),
            Err(RatingValueError::NonFinite(_))
        ));
        assert!(matches!(
            RatingValue::try_from_continuous(0.9, f64::NAN),
            Err(RatingValueError::NonFinite(_))
        ));
        assert_eq!(RatingValue::try_from_continuous(0.9, 0.5), Ok(RatingValue::Positive));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_continuous_score_rejected_at_boundary() {
        let _ = RatingValue::from_continuous(f64::NAN, 0.5);
    }

    #[test]
    fn display_is_signed() {
        assert_eq!(RatingValue::Positive.to_string(), "+1");
        assert_eq!(RatingValue::Neutral.to_string(), "0");
        assert_eq!(RatingValue::Negative.to_string(), "-1");
    }

    #[test]
    fn self_ratings_are_rejected() {
        let mut log = RatingLog::new();
        assert!(!log.push(r(1, 1, RatingValue::Positive, 0)));
        assert!(log.push(r(1, 2, RatingValue::Positive, 0)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn window_filtering_selects_period() {
        let log: RatingLog = vec![
            r(1, 2, RatingValue::Positive, 0),
            r(1, 2, RatingValue::Positive, 5),
            r(3, 2, RatingValue::Negative, 10),
        ]
        .into_iter()
        .collect();
        let w = TimeWindow::new(SimTime(0), SimTime(6));
        assert_eq!(log.in_window(w).count(), 2);
        let h = log.history_in(w);
        assert_eq!(h.ratings_for(NodeId(2)), 2);
    }

    #[test]
    fn received_and_issued_views() {
        let log: RatingLog = vec![
            r(1, 2, RatingValue::Positive, 0),
            r(2, 1, RatingValue::Positive, 0),
            r(3, 2, RatingValue::Negative, 1),
        ]
        .into_iter()
        .collect();
        assert_eq!(log.received_by(NodeId(2)).count(), 2);
        assert_eq!(log.issued_by(NodeId(2)).count(), 1);
        assert_eq!(log.received_by(NodeId(9)).count(), 0);
    }

    #[test]
    fn history_aggregates_whole_log() {
        let log: RatingLog = vec![
            r(1, 2, RatingValue::Positive, 0),
            r(3, 2, RatingValue::Negative, 1),
            r(1, 2, RatingValue::Positive, 2),
        ]
        .into_iter()
        .collect();
        let h = log.history();
        assert_eq!(h.ratings_from_to(NodeId(1), NodeId(2)), 2);
        assert_eq!(h.positive_from_to(NodeId(1), NodeId(2)), 2);
        assert_eq!(h.signed_reputation(NodeId(2)), 1);
    }
}
