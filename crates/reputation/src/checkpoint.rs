//! Atomic, checksummed checkpoints of detection state.
//!
//! A checkpoint bounds WAL replay: it captures the full detection state as of
//! a WAL sequence number, so recovery only replays records *after* it. The
//! payload encoding is owned by the caller (the engine serializes its
//! snapshot, verdict map and stats in `collusion-core`); this module owns the
//! file protocol:
//!
//! * **Atomicity** — the payload is written to `ckpt-<seq>.tmp`, fsync'd,
//!   then renamed to `ckpt-<seq>.ckpt`. A crash before the rename leaves
//!   only a `.tmp`, which loading ignores; after the rename the checkpoint
//!   is complete. There is no in-between state in which a half-written file
//!   can be mistaken for a checkpoint.
//! * **Integrity** — every file carries a header with magic, version,
//!   payload length and an FNV-1a 64 checksum. [`CheckpointStore::load_latest`]
//!   walks checkpoints newest-first and returns the first one that validates,
//!   so a corrupt newest checkpoint degrades to the previous one instead of
//!   failing recovery.
//! * **Retention** — after a successful save, all but the newest
//!   `keep` checkpoints (and any stale `.tmp` litter) are deleted.
//!
//! ```text
//! file := "CCKP" version:u32 wal_seq:u64 payload_len:u64 checksum:u64 payload
//! ```

use crate::codec::{fnv64, ByteReader, ByteWriter};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: "CCKP".
const CKPT_MAGIC: [u8; 4] = *b"CCKP";
/// Format version.
const CKPT_VERSION: u32 = 1;
/// Header size: magic + version + wal_seq + payload_len + checksum.
const CKPT_HEADER_LEN: usize = 32;
/// Completed-checkpoint file suffix.
const CKPT_SUFFIX: &str = ".ckpt";
/// In-progress (pre-rename) file suffix.
const TMP_SUFFIX: &str = ".tmp";

/// Errors from checkpoint file operations.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem I/O failed.
    Io(io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// What [`CheckpointStore::load_latest`] found.
#[derive(Clone, Debug, Default)]
pub struct CheckpointLoad {
    /// The newest valid checkpoint: (WAL high-water seq, payload bytes).
    pub latest: Option<(u64, Vec<u8>)>,
    /// Completed checkpoint files that failed validation and were skipped.
    pub invalid_skipped: usize,
    /// Stale `.tmp` files seen (evidence of a crash mid-checkpoint).
    pub stale_tmp: usize,
}

/// Encode a checkpoint file image: header + checksummed payload.
pub fn encode_checkpoint(wal_seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(CKPT_HEADER_LEN + payload.len());
    w.put_bytes(&CKPT_MAGIC);
    w.put_u32(CKPT_VERSION);
    w.put_u64(wal_seq);
    w.put_u64(payload.len() as u64);
    w.put_u64(fnv64(payload));
    w.put_bytes(payload);
    w.into_bytes()
}

/// Decode and validate a checkpoint file image. Returns
/// `(wal_seq, payload)` or `None` for any malformed input — never panics.
pub fn decode_checkpoint(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_bytes(4).ok()?;
    let version = r.get_u32().ok()?;
    if magic != CKPT_MAGIC || version != CKPT_VERSION {
        return None;
    }
    let wal_seq = r.get_u64().ok()?;
    let len = r.get_u64().ok()?;
    let checksum = r.get_u64().ok()?;
    if len != r.remaining() as u64 {
        return None;
    }
    let payload = r.get_bytes(len as usize).ok()?;
    if fnv64(payload) != checksum {
        return None;
    }
    Some((wal_seq, payload.to_vec()))
}

/// A directory of numbered checkpoint files.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Store over `dir` (created if absent), retaining the newest `keep`
    /// checkpoints (minimum 1).
    pub fn new(dir: &Path, keep: usize) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointStore { dir: dir.to_path_buf(), keep: keep.max(1) })
    }

    /// The directory holding the checkpoint files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn ckpt_path(&self, wal_seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{wal_seq:020}{CKPT_SUFFIX}"))
    }

    /// Path a checkpoint for `wal_seq` is staged at before its rename.
    /// Exposed for crash-injection harnesses that simulate a mid-checkpoint
    /// crash by leaving a partial `.tmp` behind.
    pub fn tmp_path(&self, wal_seq: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{wal_seq:020}{TMP_SUFFIX}"))
    }

    /// Atomically persist a checkpoint covering the WAL prefix up to and
    /// including `wal_seq`: write `.tmp`, fsync, rename, prune old files.
    pub fn save(&self, wal_seq: u64, payload: &[u8]) -> Result<PathBuf, CheckpointError> {
        let tmp = self.tmp_path(wal_seq);
        let finished = self.ckpt_path(wal_seq);
        let image = encode_checkpoint(wal_seq, payload);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&image)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &finished)?;
        self.prune()?;
        Ok(finished)
    }

    /// Sequence numbers of completed checkpoint files, ascending. Files whose
    /// names do not parse are ignored.
    fn completed_seqs(&self) -> Result<Vec<u64>, CheckpointError> {
        let mut seqs = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_prefix("ckpt-").and_then(|s| s.strip_suffix(CKPT_SUFFIX))
            {
                if let Ok(seq) = stem.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }

    fn prune(&self) -> Result<(), CheckpointError> {
        let seqs = self.completed_seqs()?;
        if seqs.len() > self.keep {
            for &seq in &seqs[..seqs.len() - self.keep] {
                fs::remove_file(self.ckpt_path(seq)).ok();
            }
        }
        Ok(())
    }

    /// Load the newest checkpoint that validates, skipping corrupt files and
    /// ignoring stale `.tmp` litter. Returns what was found and skipped.
    pub fn load_latest(&self) -> Result<CheckpointLoad, CheckpointError> {
        let mut load = CheckpointLoad::default();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(TMP_SUFFIX)) {
                load.stale_tmp += 1;
            }
        }
        let mut seqs = self.completed_seqs()?;
        seqs.reverse();
        for seq in seqs {
            let bytes = match fs::read(self.ckpt_path(seq)) {
                Ok(b) => b,
                Err(_) => {
                    load.invalid_skipped += 1;
                    continue;
                }
            };
            match decode_checkpoint(&bytes) {
                // trust the header's wal_seq only if it matches the filename
                Some((wal_seq, payload)) if wal_seq == seq => {
                    load.latest = Some((wal_seq, payload));
                    return Ok(load);
                }
                _ => load.invalid_skipped += 1,
            }
        }
        Ok(load)
    }

    /// Remove stale `.tmp` files (called after a successful recovery).
    pub fn clear_stale_tmp(&self) -> Result<usize, CheckpointError> {
        let mut removed = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_name().to_str().is_some_and(|n| n.ends_with(TMP_SUFFIX))
                && fs::remove_file(entry.path()).is_ok()
            {
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "collusion-ckpt-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = scratch("roundtrip");
        let store = CheckpointStore::new(&dir, 2).unwrap();
        store.save(5, b"state at five").unwrap();
        store.save(9, b"state at nine").unwrap();
        let load = store.load_latest().unwrap();
        let (seq, payload) = load.latest.unwrap();
        assert_eq!(seq, 9);
        assert_eq!(payload, b"state at nine");
        assert_eq!(load.invalid_skipped, 0);
        assert_eq!(load.stale_tmp, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retention_keeps_newest_k() {
        let dir = scratch("retain");
        let store = CheckpointStore::new(&dir, 2).unwrap();
        for seq in [1, 2, 3, 4] {
            store.save(seq, b"x").unwrap();
        }
        let seqs = store.completed_seqs().unwrap();
        assert_eq!(seqs, vec![3, 4]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = scratch("fallback");
        let store = CheckpointStore::new(&dir, 3).unwrap();
        store.save(3, b"good old state").unwrap();
        let newest = store.save(7, b"good new state").unwrap();
        // corrupt the newest checkpoint's payload
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let load = store.load_latest().unwrap();
        let (seq, payload) = load.latest.unwrap();
        assert_eq!(seq, 3);
        assert_eq!(payload, b"good old state");
        assert_eq!(load.invalid_skipped, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_is_ignored_and_counted() {
        let dir = scratch("tmp");
        let store = CheckpointStore::new(&dir, 2).unwrap();
        store.save(4, b"complete").unwrap();
        // simulate a crash mid-checkpoint: partial tmp never renamed
        let image = encode_checkpoint(8, b"half written");
        fs::write(store.tmp_path(8), &image[..image.len() / 2]).unwrap();
        let load = store.load_latest().unwrap();
        assert_eq!(load.latest.as_ref().unwrap().0, 4);
        assert_eq!(load.stale_tmp, 1);
        assert_eq!(store.clear_stale_tmp().unwrap(), 1);
        let load = store.load_latest().unwrap();
        assert_eq!(load.stale_tmp, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_rejects_malformed_images() {
        assert!(decode_checkpoint(b"").is_none());
        assert!(decode_checkpoint(b"CCKP").is_none());
        let good = encode_checkpoint(1, b"payload");
        assert!(decode_checkpoint(&good).is_some());
        // truncation
        assert!(decode_checkpoint(&good[..good.len() - 1]).is_none());
        // extra trailing byte makes the length field inconsistent
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_checkpoint(&padded).is_none());
        // bit flip in payload
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(decode_checkpoint(&flipped).is_none());
        // wrong magic
        let mut wrong = good;
        wrong[0] = b'X';
        assert!(decode_checkpoint(&wrong).is_none());
    }

    #[test]
    fn empty_store_loads_nothing() {
        let dir = scratch("empty");
        let store = CheckpointStore::new(&dir, 2).unwrap();
        let load = store.load_latest().unwrap();
        assert!(load.latest.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
