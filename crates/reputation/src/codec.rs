//! Panic-free binary codec for the durability layer.
//!
//! Both the write-ahead log ([`crate::wal`]) and the checkpoint files
//! ([`crate::checkpoint`]) persist state as little-endian, length-prefixed,
//! checksummed binary records. This module holds the shared primitives:
//!
//! * [`ByteWriter`] — append-only encoder over a growable byte buffer;
//! * [`ByteReader`] — bounds-checked decoder that returns [`CodecError`]
//!   instead of panicking, whatever bytes it is fed (the corruption fuzz
//!   tests in `tests/durability_props.rs` hold it to that contract);
//! * [`fnv64`] — the FNV-1a 64-bit checksum guarding every record and
//!   checkpoint payload. Not cryptographic: it detects torn writes and
//!   bit rot, which is the failure model of a crashed local disk, not an
//!   adversary with write access to the file.
//!
//! Decoders must never trust a length field: collection reads reserve at
//! most the number of bytes actually remaining, so a corrupt header cannot
//! trigger an unbounded allocation.

use std::fmt;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit checksum of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a decode failed. Every variant is a *data* problem — decoding never
/// panics and never aborts the process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// A tag or enum discriminant held an undefined value.
    InvalidTag(u8),
    /// A magic number or version field did not match.
    BadMagic,
    /// A checksum did not match its payload.
    ChecksumMismatch,
    /// A length field was inconsistent with the data that followed.
    BadLength,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            CodecError::BadMagic => write!(f, "bad magic or version"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch"),
            CodecError::BadLength => write!(f, "inconsistent length field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian encoder.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Empty writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian decoder over a byte slice.
#[derive(Clone, Copy, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader over `buf`, starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the reader consumed everything.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Validate a count field against the bytes that remain: each element
    /// occupies at least `min_elem_bytes`, so a count that promises more
    /// elements than could possibly fit is corrupt. Returns the count as
    /// `usize`. Guards collection reads against allocation bombs.
    pub fn checked_count(&self, count: u64, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let max = self.remaining() / min_elem_bytes.max(1);
        if count as usize > max {
            return Err(CodecError::BadLength);
        }
        Ok(count as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i64(-42);
        w.put_f64(0.1 + 0.2);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(r.get_bytes(4).unwrap(), b"tail");
        assert!(r.is_exhausted());
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.get_u64(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEof));
        assert_eq!(r.get_bytes(3), Err(CodecError::UnexpectedEof));
        assert_eq!(r.get_bytes(2).unwrap(), &[2, 3]);
        assert_eq!(r.get_u8(), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_ne!(fnv64(b"abc"), fnv64(b"ab"));
        assert_eq!(fnv64(b"collusion"), fnv64(b"collusion"));
    }

    #[test]
    fn checked_count_rejects_allocation_bombs() {
        let bytes = [0u8; 16];
        let r = ByteReader::new(&bytes);
        assert_eq!(r.checked_count(2, 8).unwrap(), 2);
        assert_eq!(r.checked_count(3, 8), Err(CodecError::BadLength));
        assert_eq!(r.checked_count(u64::MAX, 1), Err(CodecError::BadLength));
        assert_eq!(r.checked_count(16, 0).unwrap(), 16);
    }
}
