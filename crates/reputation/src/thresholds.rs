//! Detection thresholds `T_R`, `T_N`, `T_a`, `T_b`.
//!
//! §IV.B: `T_a` and `T_b` bound the positive-rating fractions `a` (from the
//! suspected partner) and `b` (from everyone else); `T_N` bounds the pair
//! rating frequency in the period `T`; `T_R` is the reputation threshold
//! above which nodes are considered trustworthy (and hence candidates for
//! collusion checks, per C1).
//!
//! The paper's trace calibration: suspicious pairs at threshold 20 ratings /
//! year had average `a = 98.37 %` and `b = 1.63 %`; the pair-frequency
//! ceiling for normal nodes was 15/year vs 55/year for colluders, giving
//! `T_N = 20`. "If we want to reduce the false negatives …, we can decrease
//! `T_a` and increase `T_b`" — [`Thresholds::relax`] / [`Thresholds::tighten`]
//! implement that knob.

use serde::{Deserialize, Serialize};

/// The four detection thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// `T_R`: minimum global reputation for a node to count as high-reputed.
    pub t_r: f64,
    /// `T_N`: minimum number of ratings from one rater in the period `T` to
    /// count as "frequent" (paper: 20/year from the Amazon trace).
    pub t_n: u64,
    /// `T_a`: minimum fraction of positive ratings from the suspected
    /// partner (paper trace average: 0.9837).
    pub t_a: f64,
    /// `T_b`: maximum fraction of positive ratings from everyone else
    /// (paper trace average: 0.0163).
    pub t_b: f64,
}

impl Thresholds {
    /// Thresholds calibrated from the paper's Amazon trace analysis:
    /// `T_N = 20` per period, `T_a = 0.8`, `T_b = 0.2`, `T_R = 0.05`
    /// (the simulation's reputation threshold, §V).
    pub const PAPER: Thresholds = Thresholds { t_r: 0.05, t_n: 20, t_a: 0.8, t_b: 0.2 };

    /// Strict thresholds matching the raw trace statistics (`a ≈ 0.9837`,
    /// `b ≈ 0.0163`): fewest false positives.
    pub const STRICT: Thresholds = Thresholds { t_r: 0.05, t_n: 20, t_a: 0.9837, t_b: 0.0163 };

    /// Construct thresholds; validates all ranges.
    pub fn new(t_r: f64, t_n: u64, t_a: f64, t_b: f64) -> Self {
        assert!((0.0..=1.0).contains(&t_a), "T_a must be in [0,1], got {t_a}");
        assert!((0.0..=1.0).contains(&t_b), "T_b must be in [0,1], got {t_b}");
        assert!(t_r.is_finite(), "T_R must be finite");
        Thresholds { t_r, t_n, t_a, t_b }
    }

    /// Decrease `T_a` and increase `T_b` by `delta` (clamped to `[0, 1]`),
    /// reducing false negatives at the cost of more false positives.
    pub fn relax(&self, delta: f64) -> Thresholds {
        Thresholds {
            t_a: (self.t_a - delta).clamp(0.0, 1.0),
            t_b: (self.t_b + delta).clamp(0.0, 1.0),
            ..*self
        }
    }

    /// Increase `T_a` and decrease `T_b` by `delta` (clamped to `[0, 1]`),
    /// reducing false positives at the cost of more false negatives.
    pub fn tighten(&self, delta: f64) -> Thresholds {
        Thresholds {
            t_a: (self.t_a + delta).clamp(0.0, 1.0),
            t_b: (self.t_b - delta).clamp(0.0, 1.0),
            ..*self
        }
    }

    /// Whether a reputation value qualifies as high-reputed (`R ≥ T_R`).
    #[inline]
    pub fn is_high_reputed(&self, reputation: f64) -> bool {
        reputation >= self.t_r
    }

    /// Whether a pair rating count qualifies as frequent (`N ≥ T_N`).
    #[inline]
    pub fn is_frequent(&self, count: u64) -> bool {
        count >= self.t_n
    }

    /// Whether the partner's positive fraction is suspiciously high
    /// (`a ≥ T_a`).
    #[inline]
    pub fn a_suspicious(&self, a: f64) -> bool {
        a >= self.t_a
    }

    /// Whether the community's positive fraction is suspiciously low
    /// (`b < T_b`).
    #[inline]
    pub fn b_suspicious(&self, b: f64) -> bool {
        b < self.t_b
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iii() {
        let t = Thresholds::PAPER;
        assert_eq!(t.t_n, 20);
        assert!(t.is_high_reputed(0.05));
        assert!(!t.is_high_reputed(0.049));
        assert!(t.is_frequent(20));
        assert!(!t.is_frequent(19));
    }

    #[test]
    fn strict_matches_trace_statistics() {
        let t = Thresholds::STRICT;
        assert!(t.a_suspicious(0.99));
        assert!(!t.a_suspicious(0.98));
        assert!(t.b_suspicious(0.016));
        assert!(!t.b_suspicious(0.017));
    }

    #[test]
    fn relax_moves_both_thresholds_toward_detection() {
        let t = Thresholds::PAPER.relax(0.1);
        assert!((t.t_a - 0.7).abs() < 1e-12);
        assert!((t.t_b - 0.3).abs() < 1e-12);
        // relax then tighten round-trips
        let back = t.tighten(0.1);
        assert!((back.t_a - Thresholds::PAPER.t_a).abs() < 1e-12);
        assert!((back.t_b - Thresholds::PAPER.t_b).abs() < 1e-12);
    }

    #[test]
    fn relax_clamps_to_unit_interval() {
        let t = Thresholds::PAPER.relax(5.0);
        assert_eq!(t.t_a, 0.0);
        assert_eq!(t.t_b, 1.0);
        let t = Thresholds::PAPER.tighten(5.0);
        assert_eq!(t.t_a, 1.0);
        assert_eq!(t.t_b, 0.0);
    }

    #[test]
    fn boundary_semantics_a_inclusive_b_exclusive() {
        let t = Thresholds::new(0.05, 20, 0.8, 0.2);
        assert!(t.a_suspicious(0.8)); // a ≥ T_a
        assert!(!t.b_suspicious(0.2)); // b < T_b strictly
        assert!(t.b_suspicious(0.19999));
    }

    #[test]
    #[should_panic(expected = "T_a must be in")]
    fn invalid_ta_rejected() {
        let _ = Thresholds::new(0.0, 1, 1.5, 0.0);
    }
}
