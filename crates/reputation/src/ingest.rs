//! Sharded multi-producer rating intake: the concurrent twin of
//! [`crate::epoch::EpochBuffer`].
//!
//! At production rates a single epoch buffer behind one lock serializes
//! every producer on one mutex. The [`ShardedIntake`] splits the epoch
//! delta into independent shards keyed by *ratee* — every counter cell of
//! one ratee lives in exactly one shard — so N producer threads folding
//! disjoint ratees never contend, and producers hitting the same shard
//! contend only on that shard's lock, not a global one.
//!
//! Determinism: counter arithmetic is commutative and associative
//! ([`PairCounters::accumulate`] is integer bookkeeping), so the multiset
//! of ratings alone fixes every cell, regardless of which producer folded
//! which rating in what order. [`ShardedIntake::drain`] concatenates the
//! shards and sorts by `(ratee, rater)` — byte-identical to
//! [`crate::epoch::EpochBuffer::drain`] over the same ratings, which is
//! what lets the pipelined engine claim bit-identical detection state
//! (asserted by this module's tests and `tests/pipeline_props.rs`).

use crate::epoch::EpochDelta;
use crate::fxhash::FxHashMap;
use crate::history::PairCounters;
use crate::id::NodeId;
use crate::rating::Rating;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One intake shard: a slice of the epoch delta map plus its rating count.
#[derive(Debug, Default)]
struct IntakeShard {
    /// (ratee, rater) → counter delta for this epoch. Fx-hashed like
    /// [`crate::epoch::EpochBuffer`]; the drain sort erases any hasher
    /// dependence.
    delta: FxHashMap<(NodeId, NodeId), PairCounters>,
    ratings: u64,
}

/// Lock-striped epoch-delta accumulator shared by N producer threads.
#[derive(Debug)]
pub struct ShardedIntake {
    shards: Vec<Mutex<IntakeShard>>,
    /// Ratings folded since the last drain (approximate while producers
    /// are active; exact once they quiesce).
    ratings: AtomicU64,
}

impl ShardedIntake {
    /// Intake striped over `shards` locks (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedIntake {
            shards: (0..shards).map(|_| Mutex::new(IntakeShard::default())).collect(),
            ratings: AtomicU64::new(0),
        }
    }

    /// Number of lock stripes.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, ratee: NodeId) -> usize {
        // keyed by ratee so each ratee's cells live in exactly one shard:
        // cross-shard (ratee, rater) duplicates are impossible by
        // construction and the drained concatenation needs no dedup
        (ratee.raw() % self.shards.len() as u64) as usize
    }

    /// Fold one rating in, locking only the ratee's shard. Self-ratings
    /// are ignored (returns `false`), matching
    /// [`crate::epoch::EpochBuffer::record`].
    pub fn record(&self, rating: Rating) -> bool {
        if rating.is_self_rating() {
            return false;
        }
        let mut shard =
            self.shards[self.shard_of(rating.ratee)].lock().expect("intake shard poisoned");
        shard.delta.entry((rating.ratee, rating.rater)).or_default().accumulate(rating.value);
        shard.ratings += 1;
        drop(shard);
        self.ratings.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Merge a producer's locally-aggregated counter cells in, locking
    /// each shard at most once.
    ///
    /// This is the batched twin of [`ShardedIntake::record`]: a producer
    /// aggregates its ratings into a private map (no lock, no contention)
    /// and periodically folds the cells here. `entries` is consumed and
    /// left empty (capacity retained for reuse); `ratings` is the number
    /// of raw ratings the cells aggregate. Counter merging is the same
    /// commutative bookkeeping as per-rating folding, so the drained delta
    /// is bit-identical either way.
    pub fn merge_cells(&self, entries: &mut Vec<(NodeId, NodeId, PairCounters)>, ratings: u64) {
        if entries.is_empty() {
            return;
        }
        let nshards = self.shards.len() as u64;
        // group cells by shard so each stripe is locked once per flush,
        // not once per rating
        entries.sort_unstable_by_key(|&(ratee, _, _)| ratee.raw() % nshards);
        let mut at = 0;
        while at < entries.len() {
            let shard_idx = self.shard_of(entries[at].0);
            let run_end = entries[at..]
                .iter()
                .position(|&(ratee, _, _)| self.shard_of(ratee) != shard_idx)
                .map_or(entries.len(), |k| at + k);
            let mut shard = self.shards[shard_idx].lock().expect("intake shard poisoned");
            for &(ratee, rater, c) in &entries[at..run_end] {
                shard.delta.entry((ratee, rater)).or_default().merge(&c);
            }
            drop(shard);
            at = run_end;
        }
        entries.clear();
        if let Some(shard) = self.shards.first() {
            // rating count is global, not per-cell; account it on stripe 0
            shard.lock().expect("intake shard poisoned").ratings += ratings;
        }
        self.ratings.fetch_add(ratings, Ordering::Relaxed);
    }

    /// Ratings folded in since the last [`ShardedIntake::drain`]. Exact
    /// only after producers quiesce.
    #[inline]
    pub fn ratings(&self) -> u64 {
        self.ratings.load(Ordering::Relaxed)
    }

    /// Distinct (ratee, rater) pairs currently buffered (sums shard sizes;
    /// exact only after producers quiesce).
    pub fn pairs_touched(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("intake shard poisoned").delta.len()).sum()
    }

    /// Whether no ratings are buffered.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().expect("intake shard poisoned").delta.is_empty())
    }

    /// Close the epoch: drain every shard into one sorted delta.
    ///
    /// Caller contract: producers must have quiesced (no concurrent
    /// [`ShardedIntake::record`] calls), or the drain boundary between two
    /// epochs is unspecified — a straggler rating lands in whichever epoch
    /// observes its shard last. Shards are locked one at a time in index
    /// order; the final sort erases any shard/drain ordering, so the
    /// result is bit-identical to [`crate::epoch::EpochBuffer::drain`]
    /// over the same rating multiset.
    pub fn drain(&self) -> EpochDelta {
        let mut entries: Vec<(NodeId, NodeId, PairCounters)> = Vec::new();
        let mut ratings = 0u64;
        for s in &self.shards {
            let mut shard = s.lock().expect("intake shard poisoned");
            ratings += std::mem::take(&mut shard.ratings);
            entries.extend(shard.delta.drain().map(|((ratee, rater), c)| (ratee, rater, c)));
        }
        entries.sort_unstable_by_key(|&(ratee, rater, _)| (ratee, rater));
        self.ratings.fetch_sub(ratings, Ordering::Relaxed);
        EpochDelta { entries, ratings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochBuffer;
    use crate::id::SimTime;
    use crate::rating::RatingValue;
    use std::sync::Arc;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_ratings(count: usize, seed: u64) -> Vec<Rating> {
        let mut s = seed;
        (0..count)
            .map(|k| {
                let rater = NodeId(splitmix(&mut s) % 40);
                let ratee = NodeId(splitmix(&mut s) % 40);
                let v = match splitmix(&mut s) % 3 {
                    0 => RatingValue::Negative,
                    1 => RatingValue::Neutral,
                    _ => RatingValue::Positive,
                };
                Rating::new(rater, ratee, v, SimTime(k as u64))
            })
            .collect()
    }

    #[test]
    fn drain_matches_epoch_buffer_bit_for_bit() {
        for shards in [1usize, 2, 7, 64] {
            let ratings = random_ratings(500, 0xD1CE ^ shards as u64);
            let intake = ShardedIntake::new(shards);
            let mut buffer = EpochBuffer::new();
            for &r in &ratings {
                assert_eq!(intake.record(r), buffer.record(r));
            }
            assert_eq!(intake.ratings(), buffer.ratings());
            assert_eq!(intake.pairs_touched(), buffer.pairs_touched());
            let a = intake.drain();
            let b = buffer.drain();
            assert_eq!(a.entries, b.entries, "shards={shards}");
            assert_eq!(a.ratings, b.ratings);
            assert!(intake.is_empty());
            // second drain is empty
            assert!(intake.drain().entries.is_empty());
        }
    }

    #[test]
    fn concurrent_producers_fold_to_the_same_delta() {
        let ratings = random_ratings(2_000, 0xFEED);
        let mut buffer = EpochBuffer::new();
        for &r in &ratings {
            buffer.record(r);
        }
        let expect = buffer.drain();
        for producers in [1usize, 2, 4, 8] {
            let intake = Arc::new(ShardedIntake::new(8));
            std::thread::scope(|scope| {
                for chunk in ratings.chunks(ratings.len().div_ceil(producers)) {
                    let intake = Arc::clone(&intake);
                    scope.spawn(move || {
                        for &r in chunk {
                            intake.record(r);
                        }
                    });
                }
            });
            let got = intake.drain();
            assert_eq!(got.entries, expect.entries, "producers={producers}");
            assert_eq!(got.ratings, expect.ratings);
        }
    }

    #[test]
    fn self_ratings_rejected() {
        let intake = ShardedIntake::new(4);
        assert!(!intake.record(Rating::positive(NodeId(3), NodeId(3), SimTime(0))));
        assert!(intake.is_empty());
        assert_eq!(intake.drain().ratings, 0);
    }

    #[test]
    fn merged_cells_drain_identically_to_per_rating_folds() {
        for shards in [1usize, 3, 8] {
            let ratings = random_ratings(800, 0xBEEF ^ shards as u64);
            let per_rating = ShardedIntake::new(shards);
            for &r in &ratings {
                per_rating.record(r);
            }
            // producer-local aggregation: fold into a private map, then
            // merge the cells in batches of uneven size
            let batched = ShardedIntake::new(shards);
            let mut cells: Vec<(NodeId, NodeId, PairCounters)> = Vec::new();
            for chunk in ratings.chunks(171) {
                let mut local: std::collections::HashMap<(NodeId, NodeId), PairCounters> =
                    Default::default();
                let mut count = 0u64;
                for &r in chunk {
                    if r.is_self_rating() {
                        continue;
                    }
                    local.entry((r.ratee, r.rater)).or_default().accumulate(r.value);
                    count += 1;
                }
                cells.extend(local.into_iter().map(|((ratee, rater), c)| (ratee, rater, c)));
                batched.merge_cells(&mut cells, count);
                assert!(cells.is_empty(), "merge_cells must consume the batch");
            }
            assert_eq!(per_rating.ratings(), batched.ratings());
            let a = per_rating.drain();
            let b = batched.drain();
            assert_eq!(a.entries, b.entries, "shards={shards}");
            assert_eq!(a.ratings, b.ratings);
        }
    }
}
