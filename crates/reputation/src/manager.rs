//! Reputation managers.
//!
//! §IV.A: "In a centralized reputation system, such as the one in Amazon, a
//! resource manager collects the ratings of all nodes and calculates the
//! reputation values of all nodes. The decentralized reputation systems …
//! distribute the role of the centralized resource manager to a number of
//! trustworthy nodes", each responsible for the ratings *about* its assigned
//! nodes (the DHT owner of `ID_i` manages `n_i`).
//!
//! [`CentralizedManager`] holds the full history; [`ManagerPartition`] splits
//! the same stream across several managers given an ownership function (in
//! the decentralized system that function is Chord key ownership, supplied
//! by the `collusion-dht` crate at a higher layer — this crate stays
//! topology-agnostic).

use crate::history::InteractionHistory;
use crate::id::NodeId;
use crate::local::LocalAggregator;
use crate::rating::{Rating, RatingLog};
use std::collections::HashMap;

/// The single resource manager of a centralized reputation system.
#[derive(Clone, Debug, Default)]
pub struct CentralizedManager {
    log: RatingLog,
    history: InteractionHistory,
}

impl CentralizedManager {
    /// New manager with no ratings.
    pub fn new() -> Self {
        CentralizedManager::default()
    }

    /// Ingest one rating (rejects self-ratings, returns `false`).
    pub fn submit(&mut self, rating: Rating) -> bool {
        if !rating.is_self_rating() {
            self.log.push(rating);
            self.history.record(rating);
            true
        } else {
            false
        }
    }

    /// Ingest a batch of ratings.
    pub fn submit_all<I: IntoIterator<Item = Rating>>(&mut self, ratings: I) {
        for r in ratings {
            self.submit(r);
        }
    }

    /// The full rating log.
    pub fn log(&self) -> &RatingLog {
        &self.log
    }

    /// The aggregate interaction history.
    pub fn history(&self) -> &InteractionHistory {
        &self.history
    }

    /// Reputation of `node` under the chosen aggregation strategy.
    pub fn reputation<A: LocalAggregator>(&self, agg: &A, node: NodeId) -> f64 {
        agg.reputation(&self.history, node)
    }

    /// Begin a new reputation-update period `T`: the history is reset while
    /// the log is kept for audit. Returns the retired period's history.
    pub fn rotate_period(&mut self) -> InteractionHistory {
        std::mem::take(&mut self.history)
    }
}

/// A set of decentralized reputation managers partitioned by an ownership
/// function `owner(node) → manager`.
///
/// Manager `M_i` of node `n_i` "keeps track of all ratings of other nodes
/// for `n_i`" — so each rating is routed to the manager owning its *ratee*.
#[derive(Clone, Debug)]
pub struct ManagerPartition {
    /// Per-manager history, keyed by manager id.
    histories: HashMap<NodeId, InteractionHistory>,
    /// Node → responsible manager.
    ownership: HashMap<NodeId, NodeId>,
    /// Ratings routed (for message-cost accounting).
    routed: u64,
}

impl ManagerPartition {
    /// Build a partition from an explicit ownership table.
    pub fn new(ownership: HashMap<NodeId, NodeId>) -> Self {
        ManagerPartition { histories: HashMap::new(), ownership, routed: 0 }
    }

    /// Build a partition by evaluating `owner` for every node in `nodes`.
    pub fn from_fn<F: Fn(NodeId) -> NodeId>(nodes: &[NodeId], owner: F) -> Self {
        let ownership = nodes.iter().map(|&n| (n, owner(n))).collect();
        ManagerPartition::new(ownership)
    }

    /// The manager responsible for `node`, if the node is registered.
    pub fn manager_of(&self, node: NodeId) -> Option<NodeId> {
        self.ownership.get(&node).copied()
    }

    /// Route one rating to the manager of its ratee. Returns that manager,
    /// or `None` when the ratee is unregistered (the rating is dropped, as a
    /// real DHT would return a lookup failure).
    pub fn submit(&mut self, rating: Rating) -> Option<NodeId> {
        if rating.is_self_rating() {
            return None;
        }
        let manager = self.manager_of(rating.ratee)?;
        self.histories.entry(manager).or_default().record(rating);
        self.routed += 1;
        Some(manager)
    }

    /// Ingest a batch of ratings.
    pub fn submit_all<I: IntoIterator<Item = Rating>>(&mut self, ratings: I) {
        for r in ratings {
            self.submit(r);
        }
    }

    /// The history view held by one manager (empty if it manages nothing).
    pub fn history_of_manager(&self, manager: NodeId) -> InteractionHistory {
        self.histories.get(&manager).cloned().unwrap_or_default()
    }

    /// Borrow a manager's history if present.
    pub fn history_ref(&self, manager: NodeId) -> Option<&InteractionHistory> {
        self.histories.get(&manager)
    }

    /// All managers that currently hold ratings.
    pub fn managers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.histories.keys().copied()
    }

    /// Number of successfully routed ratings.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Union of all managers' histories — must equal what a centralized
    /// manager would have seen (tested as an invariant).
    pub fn merged_history(&self) -> InteractionHistory {
        let mut merged = InteractionHistory::new();
        for h in self.histories.values() {
            merged.merge(h);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;
    use crate::local::{EBaySum, PositiveFraction};

    fn ratings() -> Vec<Rating> {
        vec![
            Rating::positive(NodeId(1), NodeId(2), SimTime(0)),
            Rating::positive(NodeId(1), NodeId(2), SimTime(1)),
            Rating::negative(NodeId(3), NodeId(2), SimTime(2)),
            Rating::positive(NodeId(2), NodeId(3), SimTime(3)),
        ]
    }

    #[test]
    fn centralized_manager_aggregates() {
        let mut m = CentralizedManager::new();
        m.submit_all(ratings());
        assert_eq!(m.log().len(), 4);
        assert_eq!(m.reputation(&EBaySum, NodeId(2)), 1.0);
        assert_eq!(m.reputation(&PositiveFraction::default(), NodeId(3)), 1.0);
    }

    #[test]
    fn centralized_manager_rejects_self_rating() {
        let mut m = CentralizedManager::new();
        assert!(!m.submit(Rating::positive(NodeId(1), NodeId(1), SimTime(0))));
        assert_eq!(m.log().len(), 0);
    }

    #[test]
    fn rotate_period_resets_history_keeps_log() {
        let mut m = CentralizedManager::new();
        m.submit_all(ratings());
        let old = m.rotate_period();
        assert_eq!(old.ratings_for(NodeId(2)), 3);
        assert_eq!(m.history().ratings_for(NodeId(2)), 0);
        assert_eq!(m.log().len(), 4, "audit log survives rotation");
    }

    #[test]
    fn partition_routes_by_ratee_owner() {
        // even nodes managed by n100, odd by n101
        let nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let mut p = ManagerPartition::from_fn(&nodes, |n| {
            if n.raw() % 2 == 0 {
                NodeId(100)
            } else {
                NodeId(101)
            }
        });
        for r in ratings() {
            p.submit(r);
        }
        // ratings about n2 (even) land at n100; about n3 (odd) at n101
        assert_eq!(p.history_of_manager(NodeId(100)).ratings_for(NodeId(2)), 3);
        assert_eq!(p.history_of_manager(NodeId(101)).ratings_for(NodeId(3)), 1);
        assert_eq!(p.routed(), 4);
    }

    #[test]
    fn partition_drops_unregistered_ratee() {
        let mut p = ManagerPartition::from_fn(&[NodeId(1)], |_| NodeId(9));
        assert_eq!(p.submit(Rating::positive(NodeId(1), NodeId(77), SimTime(0))), None);
        assert_eq!(p.routed(), 0);
    }

    #[test]
    fn merged_history_equals_centralized_view() {
        let nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let mut part = ManagerPartition::from_fn(&nodes, |n| NodeId(100 + n.raw() % 3));
        let mut central = CentralizedManager::new();
        for r in ratings() {
            part.submit(r);
            central.submit(r);
        }
        let merged = part.merged_history();
        for node in &nodes {
            assert_eq!(merged.ratings_for(*node), central.history().ratings_for(*node));
            assert_eq!(merged.signed_reputation(*node), central.history().signed_reputation(*node));
        }
    }

    #[test]
    fn managers_lists_active_managers() {
        let nodes: Vec<NodeId> = (1..=4).map(NodeId).collect();
        let mut p = ManagerPartition::from_fn(&nodes, |_| NodeId(7));
        p.submit(Rating::positive(NodeId(1), NodeId(2), SimTime(0)));
        let managers: Vec<NodeId> = p.managers().collect();
        assert_eq!(managers, vec![NodeId(7)]);
        assert!(p.history_ref(NodeId(8)).is_none());
    }
}
