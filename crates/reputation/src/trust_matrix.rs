//! Sparse normalized local-trust matrix for EigenTrust.
//!
//! EigenTrust defines the local trust value `c_ij` of node `i` in node `j`
//! as `max(s_ij, 0)` normalized over all of `i`'s positive local scores,
//! where `s_ij = #sat(i,j) − #unsat(i,j)`. The matrix `C = [c_ij]` is row
//! stochastic for rows with at least one positive score; rows without any
//! positive opinion fall back to the pretrusted distribution `p` (as in the
//! original paper), which we implement during the power iteration rather
//! than materializing dense rows.
//!
//! The representation is row-major sparse (each row a sorted `Vec` of
//! `(col, value)`), which keeps `t = Cᵀ·t` multiplications cache-friendly and
//! lets row scans parallelize with rayon at the call site.

use crate::history::InteractionHistory;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// Row-major sparse matrix of normalized local trust values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrustMatrix {
    /// Number of nodes (rows == cols == n); node ids are dense `0..n`.
    n: usize,
    /// `rows[i]` = sorted `(j, c_ij)` with `c_ij > 0`, summing to 1 unless
    /// the row is empty.
    rows: Vec<Vec<(u32, f64)>>,
}

impl TrustMatrix {
    /// Empty `n × n` matrix.
    pub fn empty(n: usize) -> Self {
        TrustMatrix { n, rows: vec![Vec::new(); n] }
    }

    /// Build from an interaction history over nodes `0..n`.
    ///
    /// `s_ij` is the signed pair score from `i` about `j`; negative scores
    /// are clamped to zero before normalization, exactly as EigenTrust
    /// specifies.
    pub fn from_history(history: &InteractionHistory, n: usize) -> Self {
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        // Collect positive scores per rater row.
        for (rater, ratee, counters) in history.iter_pairs() {
            let (i, j) = (rater.raw() as usize, ratee.raw() as usize);
            if i >= n || j >= n {
                continue;
            }
            let s = counters.signed();
            if s > 0 {
                rows[i].push((j as u32, s as f64));
            }
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(j, _)| j);
            let sum: f64 = row.iter().map(|&(_, v)| v).sum();
            if sum > 0.0 {
                for entry in row.iter_mut() {
                    entry.1 /= sum;
                }
            }
        }
        TrustMatrix { n, rows }
    }

    /// Build directly from raw signed scores `(i, j, s_ij)`.
    pub fn from_scores(n: usize, scores: &[(NodeId, NodeId, f64)]) -> Self {
        let mut rows: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n];
        for &(i, j, s) in scores {
            let (i, j) = (i.raw() as usize, j.raw() as usize);
            if i >= n || j >= n || i == j {
                continue;
            }
            if s > 0.0 {
                rows[i].push((j as u32, s));
            }
        }
        for row in &mut rows {
            row.sort_unstable_by_key(|&(j, _)| j);
            // merge duplicate columns
            let mut merged: Vec<(u32, f64)> = Vec::with_capacity(row.len());
            for &(j, v) in row.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == j => last.1 += v,
                    _ => merged.push((j, v)),
                }
            }
            let sum: f64 = merged.iter().map(|&(_, v)| v).sum();
            if sum > 0.0 {
                for entry in merged.iter_mut() {
                    entry.1 /= sum;
                }
            }
            *row = merged;
        }
        TrustMatrix { n, rows }
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The normalized trust `c_ij`, zero if absent.
    pub fn get(&self, i: NodeId, j: NodeId) -> f64 {
        let (i, j) = (i.raw() as usize, j.raw() as u32);
        if i >= self.n {
            return 0.0;
        }
        self.rows[i]
            .binary_search_by_key(&j, |&(col, _)| col)
            .map(|idx| self.rows[i][idx].1)
            .unwrap_or(0.0)
    }

    /// The sparse row of node `i`.
    pub fn row(&self, i: usize) -> &[(u32, f64)] {
        &self.rows[i]
    }

    /// Whether row `i` has no positive opinion (EigenTrust substitutes the
    /// pretrusted distribution for such rows).
    pub fn row_is_empty(&self, i: usize) -> bool {
        self.rows[i].is_empty()
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Compute `out = Cᵀ · t` plus, for every empty row `i`, `t_i · p`
    /// (the pretrusted fallback). Returns the number of multiply-add
    /// operations performed, which feeds the Figure 13 cost accounting.
    pub fn transpose_mul_with_fallback(&self, t: &[f64], p: &[f64], out: &mut [f64]) -> u64 {
        assert_eq!(t.len(), self.n);
        assert_eq!(p.len(), self.n);
        assert_eq!(out.len(), self.n);
        out.fill(0.0);
        let mut ops = 0u64;
        for (i, row) in self.rows.iter().enumerate() {
            let ti = t[i];
            if row.is_empty() {
                if ti != 0.0 {
                    for (o, &pj) in out.iter_mut().zip(p.iter()) {
                        *o += ti * pj;
                    }
                    ops += self.n as u64;
                }
            } else {
                for &(j, c) in row {
                    out[j as usize] += c * ti;
                }
                ops += row.len() as u64;
            }
        }
        ops
    }

    /// Verify row-stochasticity: every non-empty row sums to 1 ± `eps`.
    pub fn is_row_stochastic(&self, eps: f64) -> bool {
        self.rows.iter().all(|row| {
            if row.is_empty() {
                true
            } else {
                let s: f64 = row.iter().map(|&(_, v)| v).sum();
                (s - 1.0).abs() <= eps
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;
    use crate::rating::Rating;

    fn history() -> InteractionHistory {
        let mut h = InteractionHistory::new();
        // n0 about n1: 3 pos → s=3 ; n0 about n2: 1 pos → s=1
        for t in 0..3 {
            h.record(Rating::positive(NodeId(0), NodeId(1), SimTime(t)));
        }
        h.record(Rating::positive(NodeId(0), NodeId(2), SimTime(3)));
        // n1 about n2: 1 pos 2 neg → s=−1 → clamped to 0
        h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(4)));
        h.record(Rating::negative(NodeId(1), NodeId(2), SimTime(5)));
        h.record(Rating::negative(NodeId(1), NodeId(2), SimTime(6)));
        h
    }

    #[test]
    fn rows_are_normalized() {
        let m = TrustMatrix::from_history(&history(), 3);
        assert!((m.get(NodeId(0), NodeId(1)) - 0.75).abs() < 1e-12);
        assert!((m.get(NodeId(0), NodeId(2)) - 0.25).abs() < 1e-12);
        assert!(m.is_row_stochastic(1e-12));
    }

    #[test]
    fn negative_scores_clamped_to_zero() {
        let m = TrustMatrix::from_history(&history(), 3);
        assert_eq!(m.get(NodeId(1), NodeId(2)), 0.0);
        assert!(m.row_is_empty(1));
        assert!(m.row_is_empty(2));
    }

    #[test]
    fn transpose_mul_distributes_trust() {
        let m = TrustMatrix::from_history(&history(), 3);
        let t = vec![1.0, 0.0, 0.0];
        let p = vec![1.0 / 3.0; 3];
        let mut out = vec![0.0; 3];
        m.transpose_mul_with_fallback(&t, &p, &mut out);
        assert!((out[1] - 0.75).abs() < 1e-12);
        assert!((out[2] - 0.25).abs() < 1e-12);
        assert_eq!(out[0], 0.0);
    }

    #[test]
    fn empty_rows_fall_back_to_pretrusted() {
        let m = TrustMatrix::from_history(&history(), 3);
        // all mass on node 1, whose row is empty → redistributed via p
        let t = vec![0.0, 1.0, 0.0];
        let p = vec![0.5, 0.25, 0.25];
        let mut out = vec![0.0; 3];
        m.transpose_mul_with_fallback(&t, &p, &mut out);
        assert_eq!(out, vec![0.5, 0.25, 0.25]);
        // total mass preserved
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_scores_merges_duplicates() {
        let m = TrustMatrix::from_scores(
            3,
            &[
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(0), NodeId(1), 1.0),
                (NodeId(0), NodeId(2), 2.0),
                (NodeId(0), NodeId(0), 7.0),  // self — ignored
                (NodeId(1), NodeId(2), -4.0), // negative — ignored
            ],
        );
        assert!((m.get(NodeId(0), NodeId(1)) - 0.5).abs() < 1e-12);
        assert!((m.get(NodeId(0), NodeId(2)) - 0.5).abs() < 1e-12);
        assert_eq!(m.get(NodeId(0), NodeId(0)), 0.0);
        assert!(m.row_is_empty(1));
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn out_of_range_ids_ignored() {
        let m = TrustMatrix::from_scores(2, &[(NodeId(0), NodeId(5), 1.0)]);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(NodeId(0), NodeId(5)), 0.0);
    }

    #[test]
    fn ops_counter_counts_multiply_adds() {
        let m = TrustMatrix::from_history(&history(), 3);
        let t = vec![1.0, 1.0, 1.0];
        let p = vec![1.0 / 3.0; 3];
        let mut out = vec![0.0; 3];
        let ops = m.transpose_mul_with_fallback(&t, &p, &mut out);
        // row 0 has 2 entries; rows 1,2 empty with nonzero t → n each
        assert_eq!(ops, 2 + 3 + 3);
    }
}
