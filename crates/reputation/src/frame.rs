//! Length-prefixed, checksummed wire frames — the WAL's framing discipline
//! ([`crate::wal`]) lifted onto a byte stream.
//!
//! A frame is exactly the record layout the write-ahead log uses on disk:
//!
//! ```text
//! frame := len:u32 (LE)  checksum:u64 (LE, FNV-1a over payload)  payload[len]
//! ```
//!
//! The same three properties that make the layout safe against torn disk
//! writes make it safe against byte-stream corruption and truncation:
//!
//! * **bounded before allocation** — [`read_frame`] rejects a length field
//!   above `max_payload` *before* reserving a single payload byte, so a
//!   corrupt or hostile header cannot trigger an allocation bomb;
//! * **checksummed** — a payload whose FNV-1a 64 does not match the header
//!   is reported as [`CodecError::ChecksumMismatch`], never handed to a
//!   decoder;
//! * **panic-free** — every failure mode (short read, EOF mid-frame, bad
//!   checksum) surfaces as a [`FrameError`]; nothing in this module panics
//!   on wire input.
//!
//! The module is transport-agnostic: it works over any `std::io`
//! reader/writer (the network layer uses `TcpStream`, the tests use byte
//! slices).

use std::fmt;
use std::io::{self, Read, Write};

use crate::codec::{fnv64, CodecError};

/// Bytes of frame header preceding the payload (`len: u32` + `checksum: u64`).
pub const FRAME_HEADER_LEN: usize = 12;

/// Default ceiling on a frame payload, in bytes. Generous for every RPC the
/// detection cluster sends (the largest is a verdict list), tiny next to
/// anything that would hurt to allocate.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Why a frame read or write failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes timeouts and EOF
    /// mid-frame; an EOF *before* any header byte surfaces as `Closed`).
    Io(io::Error),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The frame content is corrupt (checksum mismatch).
    Corrupt(CodecError),
    /// The header announced a payload larger than the configured ceiling.
    /// Raised before any payload allocation.
    Oversized {
        /// Announced payload length.
        len: u32,
        /// Ceiling it exceeded.
        max: u32,
    },
    /// A read timeout fired *after* part of a frame was already consumed.
    /// The stream is now desynchronized mid-frame: retrying the read would
    /// misparse the remaining bytes as a fresh header. The only safe
    /// recovery is dropping the connection. (A timeout before any byte of
    /// a frame stays [`FrameError::Io`] with a timeout kind — that one is
    /// a benign idle poll, see [`FrameError::is_timeout`].)
    Stalled,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::Closed => write!(f, "stream closed between frames"),
            FrameError::Corrupt(e) => write!(f, "corrupt frame: {e}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload {len} exceeds ceiling {max}")
            }
            FrameError::Stalled => write!(f, "read timed out mid-frame (stream desynchronized)"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Corrupt(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this error is an *idle* transport timeout — no frame byte
    /// was consumed, so the stream is still aligned and the read can simply
    /// be retried (the server's poll loop does exactly that). A timeout
    /// that interrupts a partially-read frame is [`FrameError::Stalled`]
    /// instead and is **not** a timeout in this sense: that connection must
    /// be dropped.
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut)
    }
}

#[inline]
fn is_timeout_kind(kind: io::ErrorKind) -> bool {
    kind == io::ErrorKind::WouldBlock || kind == io::ErrorKind::TimedOut
}

/// Encode `payload` into a standalone frame (header + payload).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    encode_frame_into(payload, &mut out);
    out
}

/// Append one frame (header + payload) onto `out` without allocating a
/// fresh buffer. The streaming client coalesces many small frames into one
/// staging buffer this way, so a whole window of batches leaves in a
/// single `write_all` — one syscall and one TCP push instead of one per
/// frame.
pub fn encode_frame_into(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode one frame from the front of `bytes`, returning the payload and
/// the total bytes consumed. Pure function used by the proptests; the
/// streaming paths use [`read_frame`].
pub fn decode_frame(bytes: &[u8], max_payload: u32) -> Result<(&[u8], usize), FrameError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(FrameError::Corrupt(CodecError::UnexpectedEof));
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > max_payload {
        return Err(FrameError::Oversized { len, max: max_payload });
    }
    let checksum = u64::from_le_bytes([
        bytes[4], bytes[5], bytes[6], bytes[7], bytes[8], bytes[9], bytes[10], bytes[11],
    ]);
    let total = FRAME_HEADER_LEN + len as usize;
    if bytes.len() < total {
        return Err(FrameError::Corrupt(CodecError::UnexpectedEof));
    }
    let payload = &bytes[FRAME_HEADER_LEN..total];
    if fnv64(payload) != checksum {
        return Err(FrameError::Corrupt(CodecError::ChecksumMismatch));
    }
    Ok((payload, total))
}

/// Write `payload` as one frame. A single `write_all` of the pre-assembled
/// frame, so header and payload leave in one syscall (one TCP segment for
/// small RPCs).
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Read one frame, returning its verified payload.
///
/// A clean EOF before the first header byte returns [`FrameError::Closed`]
/// (the peer hung up between frames); an EOF anywhere inside a frame is a
/// transport error. A header announcing more than `max_payload` bytes is
/// refused **before** any payload allocation.
///
/// A read timeout **before** any frame byte surfaces as [`FrameError::Io`]
/// with a timeout kind (idle poll — safe to retry); a timeout **after** a
/// partial header or payload surfaces as [`FrameError::Stalled`], because
/// the stream position is now inside a frame and retrying would desync.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish clean close (0 bytes) from mid-header truncation.
    let mut got = 0usize;
    while got < FRAME_HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into())),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout_kind(e.kind()) && got > 0 => return Err(FrameError::Stalled),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if len > max_payload {
        return Err(FrameError::Oversized { len, max: max_payload });
    }
    let checksum = u64::from_le_bytes([
        header[4], header[5], header[6], header[7], header[8], header[9], header[10], header[11],
    ]);
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // the header was already consumed, so any timeout here is
            // mid-frame by definition
            Err(e) if is_timeout_kind(e.kind()) => return Err(FrameError::Stalled),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if fnv64(&payload) != checksum {
        return Err(FrameError::Corrupt(CodecError::ChecksumMismatch));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_over_a_stream() {
        let payloads: [&[u8]; 4] = [b"", b"x", b"hello frames", &[0xFF; 4096]];
        let mut wire = Vec::new();
        for p in payloads {
            write_frame(&mut wire, p).expect("write");
        }
        let mut cursor = &wire[..];
        for p in payloads {
            assert_eq!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD).expect("read"), p);
        }
        assert!(matches!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD), Err(FrameError::Closed)));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let frame = encode_frame(b"truncate me");
        for cut in 1..frame.len() {
            let mut cursor = &frame[..cut];
            assert!(
                read_frame(&mut cursor, MAX_FRAME_PAYLOAD).is_err(),
                "cut at {cut} must not yield a frame"
            );
        }
    }

    #[test]
    fn corrupted_bytes_fail_the_checksum() {
        let frame = encode_frame(b"bit rot target");
        for i in FRAME_HEADER_LEN..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            let mut cursor = &bad[..];
            assert!(
                matches!(
                    read_frame(&mut cursor, MAX_FRAME_PAYLOAD),
                    Err(FrameError::Corrupt(CodecError::ChecksumMismatch))
                ),
                "flipped payload byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn oversized_header_is_refused_before_allocation() {
        // a header claiming a 3 GiB payload with only 12 bytes behind it:
        // must refuse on the ceiling check, never attempt the allocation
        let mut frame = encode_frame(b"tiny");
        frame[0..4].copy_from_slice(&0xC000_0000u32.to_le_bytes());
        let mut cursor = &frame[..];
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME_PAYLOAD),
            Err(FrameError::Oversized { len: 0xC000_0000, max: MAX_FRAME_PAYLOAD })
        ));
        assert!(matches!(
            decode_frame(&frame, MAX_FRAME_PAYLOAD),
            Err(FrameError::Oversized { .. })
        ));
    }

    /// Reader yielding scripted results: bytes, a timeout, more bytes.
    struct ScriptedReader {
        script: Vec<Result<Vec<u8>, io::ErrorKind>>,
    }

    impl Read for ScriptedReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.script.pop() {
                Some(Ok(bytes)) => {
                    let n = bytes.len().min(buf.len());
                    buf[..n].copy_from_slice(&bytes[..n]);
                    Ok(n)
                }
                Some(Err(kind)) => Err(kind.into()),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn idle_timeout_stays_a_retryable_io_error() {
        // a timeout before any frame byte: the poll loop's idle tick
        let mut r = ScriptedReader { script: vec![Err(io::ErrorKind::WouldBlock)] };
        let err = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap_err();
        assert!(err.is_timeout(), "idle timeout must stay retryable, got {err}");
    }

    #[test]
    fn mid_header_timeout_is_stalled_not_retryable() {
        let frame = encode_frame(b"partial header then stall");
        let mut r = ScriptedReader {
            // script pops from the back: 5 header bytes, then a timeout
            script: vec![Err(io::ErrorKind::WouldBlock), Ok(frame[..5].to_vec())],
        };
        let err = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap_err();
        assert!(matches!(err, FrameError::Stalled), "got {err}");
        assert!(!err.is_timeout(), "a stalled stream must not look retryable");
    }

    #[test]
    fn mid_payload_timeout_is_stalled_not_retryable() {
        let frame = encode_frame(b"payload stalls halfway");
        let mut r = ScriptedReader {
            script: vec![
                Err(io::ErrorKind::TimedOut),
                Ok(frame[FRAME_HEADER_LEN..FRAME_HEADER_LEN + 4].to_vec()),
                Ok(frame[..FRAME_HEADER_LEN].to_vec()),
            ],
        };
        let err = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap_err();
        assert!(matches!(err, FrameError::Stalled), "got {err}");
        assert!(!err.is_timeout());
    }

    #[test]
    fn encode_frame_into_coalesces_identically() {
        let payloads: [&[u8]; 3] = [b"one", b"", b"three frames one buffer"];
        let mut coalesced = Vec::new();
        let mut reference = Vec::new();
        for p in payloads {
            encode_frame_into(p, &mut coalesced);
            reference.extend_from_slice(&encode_frame(p));
        }
        assert_eq!(coalesced, reference);
        let mut cursor = &coalesced[..];
        for p in payloads {
            assert_eq!(read_frame(&mut cursor, MAX_FRAME_PAYLOAD).expect("read"), p);
        }
    }

    #[test]
    fn decode_frame_reports_consumed_bytes() {
        let mut wire = encode_frame(b"first");
        wire.extend_from_slice(&encode_frame(b"second"));
        let (p1, used) = decode_frame(&wire, MAX_FRAME_PAYLOAD).expect("first");
        assert_eq!(p1, b"first");
        let (p2, _) = decode_frame(&wire[used..], MAX_FRAME_PAYLOAD).expect("second");
        assert_eq!(p2, b"second");
    }
}
