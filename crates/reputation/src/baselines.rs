//! Related-work baseline reputation schemes (paper §II).
//!
//! The paper groups existing collusion-mitigating approaches into three
//! families; this module implements representatives of the first two so the
//! simulator can compare them against EigenTrust and the detectors:
//!
//! * **First-hand-only** reputation (Feldman et al. \[8\], PET \[13\], NICE
//!   \[17\], Selçuk et al. \[18\]): "a node only believes its own
//!   observations about other nodes' behaviors, and exchanges of reputation
//!   information between nodes are disallowed." Collusive rating exchanges
//!   are invisible to third parties by construction — at the price of slow
//!   learning (every client must be burned by every bad server personally).
//!
//! * **TrustGuard-style dampening** (Srivatsa et al. \[21\]): a node's
//!   trustworthiness estimate "incorporates historical reputations and
//!   behavioral fluctuations" — the current period's score is blended with
//!   the historical average and discounted by observed volatility, blunting
//!   oscillation attacks (build reputation, milk it, repeat).

use crate::history::InteractionHistory;
use crate::id::NodeId;
use serde::{Deserialize, Serialize};

/// First-hand-only (personalized) reputation.
///
/// Stateless: every query reads the client's own pair counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstHandEngine;

impl FirstHandEngine {
    /// `client`'s personal signed score for `node` (0 when the client never
    /// interacted with it).
    pub fn personal_score(history: &InteractionHistory, client: NodeId, node: NodeId) -> i64 {
        history.pair(client, node).signed()
    }

    /// The client's personally most-trusted candidate (ties: lowest id);
    /// `None` when `candidates` is empty.
    pub fn select(
        history: &InteractionHistory,
        client: NodeId,
        candidates: &[NodeId],
    ) -> Option<NodeId> {
        candidates
            .iter()
            .copied()
            .map(|c| (c, Self::personal_score(history, client, c)))
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(c, _)| c)
    }
}

/// Configuration of the TrustGuard-style dampened estimator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DampenedConfig {
    /// Weight of the current period vs the historical average (TrustGuard's
    /// fading factor).
    pub alpha: f64,
    /// How strongly per-period volatility discounts the estimate
    /// (0 = ignore fluctuations).
    pub fluctuation_penalty: f64,
}

impl Default for DampenedConfig {
    fn default() -> Self {
        DampenedConfig { alpha: 0.5, fluctuation_penalty: 0.5 }
    }
}

/// TrustGuard-style dampened reputation over a sequence of per-period
/// positive fractions.
#[derive(Clone, Copy, Debug, Default)]
pub struct DampenedEngine {
    /// Blend and penalty parameters.
    pub config: DampenedConfig,
}

impl DampenedEngine {
    /// Engine with the given configuration.
    pub fn new(config: DampenedConfig) -> Self {
        DampenedEngine { config }
    }

    /// Fold one node's per-period positive fractions (most recent last)
    /// into a dampened trust estimate in `[0, 1]`.
    ///
    /// `estimate_t = α·score_t + (1−α)·history_{t−1}`, then the final value
    /// is discounted by the mean absolute period-to-period change:
    /// `estimate · (1 − penalty·volatility)`.
    pub fn estimate(&self, period_scores: &[f64]) -> f64 {
        if period_scores.is_empty() {
            return 0.0;
        }
        let a = self.config.alpha;
        let mut est = period_scores[0].clamp(0.0, 1.0);
        let mut volatility_sum = 0.0;
        for w in period_scores.windows(2) {
            est = a * w[1].clamp(0.0, 1.0) + (1.0 - a) * est;
            volatility_sum += (w[1] - w[0]).abs();
        }
        let volatility = if period_scores.len() > 1 {
            volatility_sum / (period_scores.len() - 1) as f64
        } else {
            0.0
        };
        (est * (1.0 - self.config.fluctuation_penalty * volatility)).clamp(0.0, 1.0)
    }

    /// Estimate from per-period histories for one node (positive fraction
    /// per period; unrated periods count as the neutral 0.5 — no evidence
    /// either way).
    pub fn estimate_from_periods(&self, periods: &[InteractionHistory], node: NodeId) -> f64 {
        let scores: Vec<f64> =
            periods.iter().map(|h| h.positive_fraction(node).unwrap_or(0.5)).collect();
        self.estimate(&scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;
    use crate::rating::Rating;

    #[test]
    fn first_hand_sees_only_own_experience() {
        let mut h = InteractionHistory::new();
        // colluders 1 and 2 boost each other massively
        for t in 0..100 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
            h.record(Rating::positive(NodeId(2), NodeId(1), SimTime(t)));
        }
        // client 9's own experience: one bad file from n2, one good from n3
        h.record(Rating::negative(NodeId(9), NodeId(2), SimTime(200)));
        h.record(Rating::positive(NodeId(9), NodeId(3), SimTime(201)));
        // the collusive boost is invisible to client 9
        assert_eq!(FirstHandEngine::personal_score(&h, NodeId(9), NodeId(2)), -1);
        assert_eq!(FirstHandEngine::personal_score(&h, NodeId(9), NodeId(1)), 0);
        assert_eq!(
            FirstHandEngine::select(&h, NodeId(9), &[NodeId(1), NodeId(2), NodeId(3)]),
            Some(NodeId(3))
        );
    }

    #[test]
    fn first_hand_select_ties_break_low_id() {
        let h = InteractionHistory::new();
        assert_eq!(
            FirstHandEngine::select(&h, NodeId(9), &[NodeId(7), NodeId(3), NodeId(5)]),
            Some(NodeId(3))
        );
        assert_eq!(FirstHandEngine::select(&h, NodeId(9), &[]), None);
    }

    #[test]
    fn dampened_steady_good_behaviour_converges_high() {
        let e = DampenedEngine::default();
        let est = e.estimate(&[0.9; 10]);
        assert!((est - 0.9).abs() < 1e-9, "steady 0.9 should estimate 0.9, got {est}");
    }

    #[test]
    fn dampened_oscillation_is_penalized() {
        let e = DampenedEngine::default();
        let steady = e.estimate(&[0.5; 10]);
        let oscillating = e.estimate(&[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0]);
        // same long-run mean (0.5), but the oscillator is discounted
        assert!(
            oscillating < steady - 0.1,
            "oscillator {oscillating} should sit well below steady {steady}"
        );
    }

    #[test]
    fn dampened_milking_attack_is_slow_to_recover() {
        // build reputation for 8 periods, then milk it: the estimate drops
        // and the earlier good history cannot hide the defection
        let e = DampenedEngine::new(DampenedConfig { alpha: 0.5, fluctuation_penalty: 0.5 });
        let honest = e.estimate(&[0.9; 10]);
        let milker = e.estimate(&[0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.0, 0.0]);
        assert!(milker < honest * 0.5, "milker {milker} vs honest {honest}");
    }

    #[test]
    fn dampened_edge_cases() {
        let e = DampenedEngine::default();
        assert_eq!(e.estimate(&[]), 0.0);
        assert_eq!(e.estimate(&[1.0]), 1.0);
        // out-of-range inputs are clamped
        assert!(e.estimate(&[7.0, -3.0]) <= 1.0);
    }

    #[test]
    fn dampened_from_period_histories() {
        let mut good = InteractionHistory::new();
        for t in 0..10 {
            good.record(Rating::positive(NodeId(1), NodeId(5), SimTime(t)));
        }
        let mut bad = InteractionHistory::new();
        for t in 0..10 {
            bad.record(Rating::negative(NodeId(2), NodeId(5), SimTime(t)));
        }
        // recency-weighted blend (α > 0.5 so the newest period dominates)
        let e = DampenedEngine::new(DampenedConfig { alpha: 0.7, fluctuation_penalty: 0.5 });
        let rising = e.estimate_from_periods(&[bad.clone(), bad.clone(), good.clone()], NodeId(5));
        let falling = e.estimate_from_periods(&[good.clone(), good, bad], NodeId(5));
        assert!(rising > falling, "recent behaviour must dominate: {rising} vs {falling}");
        // unknown node reads neutral-ish
        let neutral = e.estimate_from_periods(&[InteractionHistory::new()], NodeId(9));
        assert_eq!(neutral, 0.5);
    }
}
