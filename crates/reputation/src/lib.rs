//! Reputation-system substrates for collusion detection in P2P networks.
//!
//! This crate implements everything the ICPP 2012 paper *"Collusion Detection
//! in Reputation Systems for Peer-to-Peer Networks"* (Li, Shen, Sapra) assumes
//! as its environment:
//!
//! * rating primitives ([`rating::Rating`], [`rating::RatingValue`]) mirroring
//!   the Amazon/eBay −1/0/+1 feedback model,
//! * the interaction-history bookkeeping of the paper's Table I
//!   ([`history::InteractionHistory`]): per-pair rating counts `N(j,i)`,
//!   positive/negative splits, and the derived fractions `a` and `b`,
//! * local reputation aggregation ([`local`]): eBay-style signed sums and
//!   positive-fraction scores,
//! * global reputation engines ([`eigentrust`]): canonical EigenTrust power
//!   iteration with a pretrusted distribution, and the weighted-sum variant
//!   the paper's evaluation section uses (`w_l = 0.2`, `w_s = 0.5`),
//! * reputation managers ([`manager`]): the centralized single-manager model
//!   (Amazon) and the assignment of nodes to decentralized managers.
//!
//! The collusion detectors themselves live in the `collusion-core` crate and
//! consume the types defined here.
//!
//! # Quick example
//!
//! ```
//! use collusion_reputation::prelude::*;
//!
//! let mut hist = InteractionHistory::new();
//! hist.record(Rating::positive(NodeId(1), NodeId(2), SimTime(0)));
//! hist.record(Rating::negative(NodeId(3), NodeId(2), SimTime(1)));
//! assert_eq!(hist.ratings_for(NodeId(2)), 2);
//! assert_eq!(hist.signed_reputation(NodeId(2)), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod checkpoint;
pub mod codec;
pub mod eigentrust;
pub mod epoch;
pub mod frame;
pub mod fxhash;
pub mod history;
pub mod id;
pub mod ingest;
pub mod local;
pub mod manager;
pub mod par;
pub mod rating;
pub mod sharded;
pub mod snapshot;
pub mod thresholds;
pub mod trust_matrix;
pub mod view;
pub mod wal;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::baselines::{DampenedConfig, DampenedEngine, FirstHandEngine};
    pub use crate::checkpoint::{CheckpointLoad, CheckpointStore};
    pub use crate::codec::{ByteReader, ByteWriter, CodecError};
    pub use crate::eigentrust::{
        EigenTrust, EigenTrustConfig, NormalizedWeightedEngine, WeightedSumConfig,
        WeightedSumEngine,
    };
    pub use crate::epoch::{EpochBuffer, EpochDelta};
    pub use crate::history::{InteractionHistory, PairCounters};
    pub use crate::id::{NodeId, SimTime};
    pub use crate::ingest::ShardedIntake;
    pub use crate::local::{EBaySum, LocalAggregator, PositiveFraction};
    pub use crate::manager::CentralizedManager;
    pub use crate::rating::{Rating, RatingLog, RatingValue};
    pub use crate::sharded::ShardedSnapshot;
    pub use crate::snapshot::{DetectionSnapshot, RefreshOutcome};
    pub use crate::thresholds::Thresholds;
    pub use crate::trust_matrix::TrustMatrix;
    pub use crate::view::SnapshotView;
    pub use crate::wal::{SyncPolicy, Wal, WalRecord, WalReplay};
}
