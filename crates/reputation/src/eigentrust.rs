//! EigenTrust global reputation engines.
//!
//! Two engines are provided:
//!
//! * [`EigenTrust`] — the canonical power iteration
//!   `t⁽ᵏ⁺¹⁾ = (1−α)·Cᵀ·t⁽ᵏ⁾ + α·p` over the normalized local-trust matrix
//!   `C` with pretrusted distribution `p` and damping `α` (Kamvar et al.,
//!   WWW 2003). The iteration count and multiply-add operations are exposed
//!   for the Figure 13 cost comparison ("the operation cost in EigenTrust is
//!   caused by the recursive matrix calculation, which is determined by the
//!   number of the nodes in the system").
//!
//! * [`WeightedSumEngine`] — the variant the paper's evaluation section
//!   actually simulates: `R_i = Σ_j w_l·r_{ji} + Σ_p w_s·r_{pi}` where `w_l`
//!   is the weight of ordinary raters and `w_s > w_l` the weight of
//!   pretrusted raters (§V: `w_l = 0.2`, `w_s = 0.5`). Reputations are then
//!   normalized to sum to one so distributions are comparable across
//!   scenarios, matching the magnitudes in Figures 5–11.

use crate::history::InteractionHistory;
use crate::id::NodeId;
use crate::trust_matrix::TrustMatrix;
use serde::{Deserialize, Serialize};

/// Configuration of the canonical EigenTrust power iteration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EigenTrustConfig {
    /// Damping factor `α` (probability of teleporting to pretrusted nodes).
    pub alpha: f64,
    /// L1 convergence tolerance.
    pub epsilon: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for EigenTrustConfig {
    fn default() -> Self {
        EigenTrustConfig { alpha: 0.1, epsilon: 1e-9, max_iterations: 200 }
    }
}

/// Result of one EigenTrust computation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EigenTrustResult {
    /// Global trust vector, indexed by dense node id; sums to 1.
    pub trust: Vec<f64>,
    /// Iterations executed until convergence (or the cap).
    pub iterations: usize,
    /// Whether the L1 tolerance was reached within the cap.
    pub converged: bool,
    /// Multiply-add operations performed (cost metric for Figure 13).
    pub operations: u64,
}

impl EigenTrustResult {
    /// Trust value of a node (zero if out of range).
    pub fn trust_of(&self, node: NodeId) -> f64 {
        self.trust.get(node.raw() as usize).copied().unwrap_or(0.0)
    }

    /// Nodes ranked by trust, highest first, ties broken by id.
    pub fn ranking(&self) -> Vec<(NodeId, f64)> {
        let mut v: Vec<(NodeId, f64)> =
            self.trust.iter().enumerate().map(|(i, &t)| (NodeId(i as u64), t)).collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        v
    }
}

/// The canonical EigenTrust power-iteration engine.
#[derive(Clone, Debug, Default)]
pub struct EigenTrust {
    /// Iteration parameters.
    pub config: EigenTrustConfig,
}

impl EigenTrust {
    /// Engine with the given configuration.
    pub fn new(config: EigenTrustConfig) -> Self {
        EigenTrust { config }
    }

    /// Uniform pretrusted distribution over `pretrusted` within `0..n`
    /// (uniform over *all* nodes when the set is empty, as EigenTrust
    /// prescribes).
    pub fn pretrusted_distribution(n: usize, pretrusted: &[NodeId]) -> Vec<f64> {
        let mut p = vec![0.0; n];
        let in_range: Vec<usize> =
            pretrusted.iter().map(|id| id.raw() as usize).filter(|&i| i < n).collect();
        if in_range.is_empty() {
            let u = 1.0 / n as f64;
            p.fill(u);
        } else {
            let share = 1.0 / in_range.len() as f64;
            for i in in_range {
                p[i] += share;
            }
        }
        p
    }

    /// Run the power iteration on `matrix` with pretrusted set `pretrusted`.
    pub fn compute(&self, matrix: &TrustMatrix, pretrusted: &[NodeId]) -> EigenTrustResult {
        let n = matrix.n();
        assert!(n > 0, "EigenTrust needs at least one node");
        let p = Self::pretrusted_distribution(n, pretrusted);
        let mut t = p.clone();
        let mut next = vec![0.0; n];
        let mut operations = 0u64;
        let alpha = self.config.alpha;
        let mut iterations = 0;
        let mut converged = false;
        while iterations < self.config.max_iterations {
            operations += matrix.transpose_mul_with_fallback(&t, &p, &mut next);
            let mut delta = 0.0;
            for i in 0..n {
                next[i] = (1.0 - alpha) * next[i] + alpha * p[i];
                delta += (next[i] - t[i]).abs();
            }
            operations += 2 * n as u64;
            std::mem::swap(&mut t, &mut next);
            iterations += 1;
            if delta < self.config.epsilon {
                converged = true;
                break;
            }
        }
        // Normalize defensively against floating drift.
        let sum: f64 = t.iter().sum();
        if sum > 0.0 {
            for v in &mut t {
                *v /= sum;
            }
        }
        EigenTrustResult { trust: t, iterations, converged, operations }
    }

    /// Convenience: build the matrix from `history` over `0..n` and compute.
    pub fn compute_from_history(
        &self,
        history: &InteractionHistory,
        n: usize,
        pretrusted: &[NodeId],
    ) -> EigenTrustResult {
        let matrix = TrustMatrix::from_history(history, n);
        self.compute(&matrix, pretrusted)
    }
}

/// Configuration of the paper's weighted-sum reputation (§V).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WeightedSumConfig {
    /// Weight `w_l` of ratings from ordinary nodes (paper: 0.2).
    pub w_l: f64,
    /// Weight `w_s` of ratings from pretrusted nodes (paper: 0.5).
    pub w_s: f64,
    /// Normalize the final vector to sum to one (matches the figures'
    /// reputation-distribution scale).
    pub normalize: bool,
}

impl Default for WeightedSumConfig {
    fn default() -> Self {
        WeightedSumConfig { w_l: 0.2, w_s: 0.5, normalize: true }
    }
}

/// The weighted-sum engine: `R_i = Σ_j w·r_{ji}` with per-rater weights.
#[derive(Clone, Debug, Default)]
pub struct WeightedSumEngine {
    /// Weights and normalization settings.
    pub config: WeightedSumConfig,
}

impl WeightedSumEngine {
    /// Engine with the given configuration.
    pub fn new(config: WeightedSumConfig) -> Self {
        WeightedSumEngine { config }
    }

    /// Compute reputations for nodes `0..n`. `pretrusted` selects the raters
    /// whose ratings carry weight `w_s`; every other rater carries `w_l`.
    ///
    /// Negative raw sums are floored at zero before normalization so that a
    /// node's reputation cannot be negative mass in the distribution (the
    /// figures plot non-negative values only); the raw signed value is
    /// returned alongside for threshold checks.
    pub fn compute(
        &self,
        history: &InteractionHistory,
        n: usize,
        pretrusted: &[NodeId],
    ) -> WeightedSumResult {
        let mut raw = vec![0.0f64; n];
        let mut operations = 0u64;
        let pretrusted_mask: Vec<bool> = {
            let mut mask = vec![false; n];
            for id in pretrusted {
                let i = id.raw() as usize;
                if i < n {
                    mask[i] = true;
                }
            }
            mask
        };
        // Sort pairs so float accumulation order is deterministic across
        // processes (HashMap iteration order is seeded per process).
        let mut pairs: Vec<(NodeId, NodeId, i64)> =
            history.iter_pairs().map(|(rater, ratee, c)| (rater, ratee, c.signed())).collect();
        pairs.sort_unstable_by_key(|&(rater, ratee, _)| (ratee, rater));
        for (rater, ratee, signed) in pairs {
            let (j, i) = (rater.raw() as usize, ratee.raw() as usize);
            if j >= n || i >= n {
                continue;
            }
            let w = if pretrusted_mask[j] { self.config.w_s } else { self.config.w_l };
            raw[i] += w * signed as f64;
            operations += 1;
        }
        let mut rep: Vec<f64> = raw.iter().map(|&v| v.max(0.0)).collect();
        if self.config.normalize {
            let sum: f64 = rep.iter().sum();
            if sum > 0.0 {
                for v in &mut rep {
                    *v /= sum;
                }
            }
            operations += n as u64;
        }
        WeightedSumResult { reputation: rep, raw, operations }
    }
}

/// The trust-normalized weighted-sum engine.
///
/// Reads the paper's `R_i = Σ_j w_l·r_{ji} + Σ_p w_s·r_{pi}` with `r_{ji}`
/// as EigenTrust's *normalized local trust* `c_{ji} ∈ [0, 1]` rather than
/// the raw signed rating sum: each rater contributes at most one vote,
/// however many ratings it submits, pretrusted votes weigh `w_s`. This is
/// one damped EigenTrust step and caps the leverage of sheer rating volume;
/// the plain [`WeightedSumEngine`] keeps the raw-sum reading. The simulator
/// exposes both so the evaluation can compare them.
#[derive(Clone, Debug, Default)]
pub struct NormalizedWeightedEngine {
    /// Weights and normalization settings (shared with the raw-sum engine).
    pub config: WeightedSumConfig,
}

impl NormalizedWeightedEngine {
    /// Engine with the given configuration.
    pub fn new(config: WeightedSumConfig) -> Self {
        NormalizedWeightedEngine { config }
    }

    /// Compute reputations for nodes `0..n`.
    pub fn compute(
        &self,
        history: &InteractionHistory,
        n: usize,
        pretrusted: &[NodeId],
    ) -> WeightedSumResult {
        let matrix = TrustMatrix::from_history(history, n);
        let mut pretrusted_mask = vec![false; n];
        for id in pretrusted {
            let i = id.raw() as usize;
            if i < n {
                pretrusted_mask[i] = true;
            }
        }
        let mut raw = vec![0.0f64; n];
        let mut operations = 0u64;
        for (j, &is_pre) in pretrusted_mask.iter().enumerate() {
            let w = if is_pre { self.config.w_s } else { self.config.w_l };
            for &(i, c) in matrix.row(j) {
                raw[i as usize] += w * c;
                operations += 1;
            }
        }
        let mut rep: Vec<f64> = raw.clone();
        if self.config.normalize {
            let sum: f64 = rep.iter().sum();
            if sum > 0.0 {
                for v in &mut rep {
                    *v /= sum;
                }
            }
            operations += n as u64;
        }
        WeightedSumResult { reputation: rep, raw, operations }
    }
}

/// Result of a weighted-sum computation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WeightedSumResult {
    /// Non-negative (optionally normalized) reputation per node.
    pub reputation: Vec<f64>,
    /// Raw signed weighted sums before flooring/normalization.
    pub raw: Vec<f64>,
    /// Operation count (weighted accumulations + normalization).
    pub operations: u64,
}

impl WeightedSumResult {
    /// Reputation of a node (zero if out of range).
    pub fn reputation_of(&self, node: NodeId) -> f64 {
        self.reputation.get(node.raw() as usize).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;
    use crate::rating::Rating;

    fn chain_history(n: usize, reps: usize) -> InteractionHistory {
        // ring of goodwill: i rates i+1 mod n positively `reps` times
        let mut h = InteractionHistory::new();
        let mut t = 0;
        for i in 0..n {
            for _ in 0..reps {
                h.record(Rating::positive(
                    NodeId(i as u64),
                    NodeId(((i + 1) % n) as u64),
                    SimTime(t),
                ));
                t += 1;
            }
        }
        h
    }

    #[test]
    fn symmetric_ring_yields_uniform_trust() {
        let h = chain_history(5, 3);
        let res = EigenTrust::default().compute_from_history(&h, 5, &[]);
        assert!(res.converged);
        for &v in &res.trust {
            assert!((v - 0.2).abs() < 1e-6, "expected uniform, got {:?}", res.trust);
        }
        assert!((res.trust.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pretrusted_distribution_uniform_when_empty() {
        let p = EigenTrust::pretrusted_distribution(4, &[]);
        assert_eq!(p, vec![0.25; 4]);
    }

    #[test]
    fn pretrusted_distribution_concentrates_on_set() {
        let p = EigenTrust::pretrusted_distribution(4, &[NodeId(1), NodeId(3)]);
        assert_eq!(p, vec![0.0, 0.5, 0.0, 0.5]);
    }

    #[test]
    fn pretrusted_distribution_ignores_out_of_range() {
        let p = EigenTrust::pretrusted_distribution(2, &[NodeId(0), NodeId(9)]);
        assert_eq!(p, vec![1.0, 0.0]);
    }

    #[test]
    fn well_behaved_node_earns_more_trust() {
        // everyone rates n0 positively; n0 rates n1 positively
        let mut h = InteractionHistory::new();
        for j in 1..5u64 {
            for t in 0..3 {
                h.record(Rating::positive(NodeId(j), NodeId(0), SimTime(t)));
            }
        }
        h.record(Rating::positive(NodeId(0), NodeId(1), SimTime(99)));
        let res = EigenTrust::default().compute_from_history(&h, 5, &[]);
        let r = res.ranking();
        assert_eq!(r[0].0, NodeId(0), "n0 should rank first: {:?}", r);
        assert!(res.trust_of(NodeId(0)) > res.trust_of(NodeId(2)));
    }

    #[test]
    fn trust_vector_is_a_distribution() {
        let h = chain_history(7, 2);
        let res = EigenTrust::default().compute_from_history(&h, 7, &[NodeId(0)]);
        let sum: f64 = res.trust.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(res.trust.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn iteration_cap_respected() {
        let h = chain_history(6, 1);
        let engine =
            EigenTrust::new(EigenTrustConfig { alpha: 0.0, epsilon: 0.0, max_iterations: 3 });
        let res = engine.compute_from_history(&h, 6, &[]);
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
        assert!(res.operations > 0);
    }

    #[test]
    fn weighted_sum_weights_pretrusted_higher() {
        let mut h = InteractionHistory::new();
        // pretrusted n0 rates n1 once (+); ordinary n2 rates n3 once (+)
        h.record(Rating::positive(NodeId(0), NodeId(1), SimTime(0)));
        h.record(Rating::positive(NodeId(2), NodeId(3), SimTime(1)));
        let engine =
            WeightedSumEngine::new(WeightedSumConfig { w_l: 0.2, w_s: 0.5, normalize: false });
        let res = engine.compute(&h, 4, &[NodeId(0)]);
        assert!((res.reputation_of(NodeId(1)) - 0.5).abs() < 1e-12);
        assert!((res.reputation_of(NodeId(3)) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_normalizes_to_one() {
        let mut h = InteractionHistory::new();
        h.record(Rating::positive(NodeId(0), NodeId(1), SimTime(0)));
        h.record(Rating::positive(NodeId(0), NodeId(2), SimTime(1)));
        let res = WeightedSumEngine::default().compute(&h, 3, &[]);
        assert!((res.reputation.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_floors_negative_reputation() {
        let mut h = InteractionHistory::new();
        h.record(Rating::negative(NodeId(0), NodeId(1), SimTime(0)));
        h.record(Rating::positive(NodeId(0), NodeId(2), SimTime(1)));
        let res = WeightedSumEngine::default().compute(&h, 3, &[]);
        assert_eq!(res.reputation_of(NodeId(1)), 0.0);
        assert!(res.raw[1] < 0.0);
        assert!(res.reputation_of(NodeId(2)) > 0.0);
    }

    #[test]
    fn collusion_inflates_weighted_sum_reputation() {
        // colluders n4, n5 rate each other 10 times; n1 serves well twice
        let mut h = InteractionHistory::new();
        for t in 0..10 {
            h.record(Rating::positive(NodeId(4), NodeId(5), SimTime(t)));
            h.record(Rating::positive(NodeId(5), NodeId(4), SimTime(t)));
        }
        h.record(Rating::positive(NodeId(2), NodeId(1), SimTime(50)));
        h.record(Rating::positive(NodeId(3), NodeId(1), SimTime(51)));
        let res = WeightedSumEngine::default().compute(&h, 6, &[]);
        assert!(
            res.reputation_of(NodeId(4)) > res.reputation_of(NodeId(1)),
            "colluders should outrank honest node under plain weighted sums"
        );
    }
}
