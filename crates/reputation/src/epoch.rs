//! Epoch write-buffer: an LSM-style delta of [`PairCounters`] absorbed
//! between detection rounds.
//!
//! At production scale, folding every rating straight into the frozen
//! detection structures would patch rows millions of times per period. The
//! [`EpochBuffer`] instead accumulates ratings as an in-memory delta map —
//! O(1) per rating, one cell per touched (ratee, rater) pair — and hands
//! the aggregated [`EpochDelta`] to
//! [`crate::sharded::ShardedSnapshot::apply_epoch`] when the epoch closes.
//! The delta doubles as the detection round's *dirty-pair work queue*: the
//! pairs whose counters changed are exactly the entries, so an incremental
//! detector re-examines only those (plus pairs adjacent to reputation
//! flips) instead of scanning the whole matrix.
//!
//! Counter arithmetic is the same integer bookkeeping
//! [`crate::history::InteractionHistory::record`] performs, so a snapshot
//! advanced by epoch deltas stays bit-identical to one built from a history
//! that recorded the same ratings (asserted by the sharded-snapshot tests).

use crate::fxhash::FxHashMap;
use crate::history::PairCounters;
use crate::id::NodeId;
use crate::rating::Rating;

/// Accumulates one epoch's ratings as a delta of pair counters.
#[derive(Clone, Debug, Default)]
pub struct EpochBuffer {
    /// (ratee, rater) → counter delta for this epoch. Fx-hashed: one probe
    /// per rating is the ingest hot path, and drain sorts the entries, so
    /// the hasher cannot affect results.
    delta: FxHashMap<(NodeId, NodeId), PairCounters>,
    ratings: u64,
    /// Memory watermark: when the delta map reaches this many pairs the
    /// buffer reports itself over the watermark and the engine closes the
    /// epoch early. `None` = unbounded (the default, preserving historical
    /// behavior).
    max_pairs: Option<usize>,
}

impl EpochBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        EpochBuffer::default()
    }

    /// Empty buffer that reports itself over the watermark once `max_pairs`
    /// distinct (ratee, rater) pairs are buffered. Bounds the buffer's
    /// memory: each pair costs one map cell, so the watermark caps resident
    /// delta size regardless of how hot the rating stream runs.
    pub fn with_max_pairs(max_pairs: usize) -> Self {
        EpochBuffer { max_pairs: Some(max_pairs.max(1)), ..EpochBuffer::default() }
    }

    /// Set or clear the max-pairs watermark on an existing buffer.
    pub fn set_max_pairs(&mut self, max_pairs: Option<usize>) {
        self.max_pairs = max_pairs.map(|m| m.max(1));
    }

    /// The configured watermark, if any.
    #[inline]
    pub fn max_pairs(&self) -> Option<usize> {
        self.max_pairs
    }

    /// Whether the buffered delta has reached the memory watermark and the
    /// epoch should be closed early.
    #[inline]
    pub fn over_watermark(&self) -> bool {
        self.max_pairs.is_some_and(|m| self.delta.len() >= m)
    }

    /// Fold one rating in. Self-ratings are ignored (returns `false`),
    /// matching [`crate::history::InteractionHistory::record`].
    pub fn record(&mut self, rating: Rating) -> bool {
        if rating.is_self_rating() {
            return false;
        }
        self.delta.entry((rating.ratee, rating.rater)).or_default().accumulate(rating.value);
        self.ratings += 1;
        true
    }

    /// Fold an already-aggregated counter cell in — the re-buffering path
    /// for an intake delta that was drained but never closed. Self-pairs
    /// and empty cells are ignored, matching [`EpochBuffer::record`].
    pub fn record_counters(&mut self, ratee: NodeId, rater: NodeId, counters: PairCounters) {
        if ratee == rater || counters.total == 0 {
            return;
        }
        self.delta.entry((ratee, rater)).or_default().merge(&counters);
        self.ratings += counters.total;
    }

    /// Number of ratings folded in since the last [`EpochBuffer::drain`].
    #[inline]
    pub fn ratings(&self) -> u64 {
        self.ratings
    }

    /// Number of distinct (ratee, rater) pairs touched this epoch.
    #[inline]
    pub fn pairs_touched(&self) -> usize {
        self.delta.len()
    }

    /// Whether the buffer holds no ratings.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.delta.is_empty()
    }

    /// Close the epoch: empty the buffer into a sorted delta.
    pub fn drain(&mut self) -> EpochDelta {
        let mut entries: Vec<(NodeId, NodeId, PairCounters)> =
            self.delta.drain().map(|((ratee, rater), c)| (ratee, rater, c)).collect();
        entries.sort_unstable_by_key(|&(ratee, rater, _)| (ratee, rater));
        EpochDelta { entries, ratings: std::mem::take(&mut self.ratings) }
    }
}

/// One closed epoch's aggregated counter delta.
#[derive(Clone, Debug, Default)]
pub struct EpochDelta {
    /// `(ratee, rater, counter delta)`, sorted by `(ratee, rater)` — the
    /// dirty-pair work queue for the next detection round.
    pub entries: Vec<(NodeId, NodeId, PairCounters)>,
    /// Number of ratings aggregated into the entries.
    pub ratings: u64,
}

impl EpochDelta {
    /// Whether the delta is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct ratees whose rows this delta touches, ascending.
    pub fn dirty_ratees(&self) -> impl Iterator<Item = NodeId> + '_ {
        let mut last: Option<NodeId> = None;
        self.entries.iter().filter_map(move |&(ratee, _, _)| {
            if Some(ratee) == last {
                None
            } else {
                last = Some(ratee);
                Some(ratee)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::InteractionHistory;
    use crate::id::SimTime;
    use crate::rating::RatingValue;

    #[test]
    fn buffer_aggregates_like_history() {
        let mut buf = EpochBuffer::new();
        let mut h = InteractionHistory::new();
        let ratings = [
            (1u64, 2u64, RatingValue::Positive),
            (1, 2, RatingValue::Positive),
            (1, 2, RatingValue::Negative),
            (3, 2, RatingValue::Neutral),
            (2, 1, RatingValue::Positive),
        ];
        for (t, &(j, i, v)) in ratings.iter().enumerate() {
            let r = Rating::new(NodeId(j), NodeId(i), v, SimTime(t as u64));
            buf.record(r);
            h.record(r);
        }
        assert_eq!(buf.ratings(), 5);
        assert_eq!(buf.pairs_touched(), 3);
        let delta = buf.drain();
        assert!(buf.is_empty());
        assert_eq!(delta.ratings, 5);
        for &(ratee, rater, c) in &delta.entries {
            assert_eq!(c, h.pair(rater, ratee), "delta cell {rater}->{ratee}");
        }
        assert!(delta.entries.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        assert_eq!(delta.dirty_ratees().collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn watermark_trips_at_max_pairs() {
        let mut buf = EpochBuffer::with_max_pairs(2);
        assert_eq!(buf.max_pairs(), Some(2));
        buf.record(Rating::positive(NodeId(1), NodeId(2), SimTime(0)));
        assert!(!buf.over_watermark());
        // same pair again: no new cell, still under
        buf.record(Rating::positive(NodeId(1), NodeId(2), SimTime(1)));
        assert!(!buf.over_watermark());
        buf.record(Rating::positive(NodeId(3), NodeId(2), SimTime(2)));
        assert!(buf.over_watermark());
        // draining resets the watermark; the limit survives the drain
        let delta = buf.drain();
        assert_eq!(delta.ratings, 3);
        assert!(!buf.over_watermark());
        assert_eq!(buf.max_pairs(), Some(2));
        // clearing the limit disables the watermark
        buf.set_max_pairs(None);
        for k in 0..10 {
            buf.record(Rating::positive(NodeId(k), NodeId(k + 100), SimTime(k)));
        }
        assert!(!buf.over_watermark());
    }

    #[test]
    fn self_ratings_rejected() {
        let mut buf = EpochBuffer::new();
        assert!(!buf.record(Rating::positive(NodeId(4), NodeId(4), SimTime(0))));
        assert!(buf.is_empty());
        assert_eq!(buf.drain().ratings, 0);
    }
}
