//! Local reputation aggregation strategies.
//!
//! §IV.A: "There are many ways to calculate global reputation values of
//! nodes. We use the local reputation calculation method in eBay and
//! EigenTrust as an example in this paper. That is, the local reputation
//! rating for each interaction for a node is −1, 0 and 1. A node's final
//! reputation is the sum of all its received reputation evaluation values."
//!
//! [`EBaySum`] implements exactly that; [`PositiveFraction`] implements the
//! Amazon score (§III: positives divided by all ratings), which the trace
//! analysis uses. Both implement [`LocalAggregator`] so detectors and
//! managers are generic over the choice.

use crate::history::InteractionHistory;
use crate::id::NodeId;

/// A strategy turning an interaction history into a per-node reputation
/// score.
pub trait LocalAggregator {
    /// Compute `ratee`'s reputation from the history. Nodes without ratings
    /// receive the aggregator's neutral element.
    fn reputation(&self, history: &InteractionHistory, ratee: NodeId) -> f64;

    /// The score an unrated node gets.
    fn neutral(&self) -> f64 {
        0.0
    }
}

/// eBay / EigenTrust local reputation: the signed sum `#pos − #neg`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EBaySum;

impl LocalAggregator for EBaySum {
    fn reputation(&self, history: &InteractionHistory, ratee: NodeId) -> f64 {
        history.signed_reputation(ratee) as f64
    }
}

/// Amazon-style reputation: positive ratings divided by all ratings.
///
/// Unrated nodes get `default` (Amazon shows "no feedback yet"; we default to
/// 0.0 so that untested sellers are not preferred over proven ones).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PositiveFraction {
    /// Score assigned to unrated nodes.
    pub default: f64,
}

impl Default for PositiveFraction {
    fn default() -> Self {
        PositiveFraction { default: 0.0 }
    }
}

impl LocalAggregator for PositiveFraction {
    fn reputation(&self, history: &InteractionHistory, ratee: NodeId) -> f64 {
        history.positive_fraction(ratee).unwrap_or(self.default)
    }

    fn neutral(&self) -> f64 {
        self.default
    }
}

/// Rank the given nodes by reputation, highest first; ties broken by id so
/// the ordering is deterministic.
pub fn rank_by_reputation<A: LocalAggregator>(
    agg: &A,
    history: &InteractionHistory,
    nodes: &[NodeId],
) -> Vec<(NodeId, f64)> {
    let mut scored: Vec<(NodeId, f64)> =
        nodes.iter().map(|&n| (n, agg.reputation(history, n))).collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;
    use crate::rating::Rating;

    fn hist() -> InteractionHistory {
        let mut h = InteractionHistory::new();
        // n2: 3 pos, 1 neg  → sum 2, fraction 0.75
        for t in 0..3 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
        }
        h.record(Rating::negative(NodeId(3), NodeId(2), SimTime(3)));
        // n3: 1 neg → sum −1, fraction 0
        h.record(Rating::negative(NodeId(1), NodeId(3), SimTime(4)));
        h
    }

    #[test]
    fn ebay_sum_is_signed_total() {
        let h = hist();
        assert_eq!(EBaySum.reputation(&h, NodeId(2)), 2.0);
        assert_eq!(EBaySum.reputation(&h, NodeId(3)), -1.0);
        assert_eq!(EBaySum.reputation(&h, NodeId(99)), 0.0);
    }

    #[test]
    fn positive_fraction_is_amazon_score() {
        let h = hist();
        let agg = PositiveFraction::default();
        assert_eq!(agg.reputation(&h, NodeId(2)), 0.75);
        assert_eq!(agg.reputation(&h, NodeId(3)), 0.0);
        assert_eq!(agg.reputation(&h, NodeId(99)), 0.0);
    }

    #[test]
    fn positive_fraction_default_for_unrated() {
        let h = InteractionHistory::new();
        let agg = PositiveFraction { default: 0.5 };
        assert_eq!(agg.reputation(&h, NodeId(1)), 0.5);
        assert_eq!(agg.neutral(), 0.5);
    }

    #[test]
    fn ranking_orders_descending_with_id_tiebreak() {
        let h = hist();
        let ranked =
            rank_by_reputation(&EBaySum, &h, &[NodeId(3), NodeId(2), NodeId(7), NodeId(4)]);
        assert_eq!(ranked[0].0, NodeId(2));
        // n4 and n7 are tied at 0 → lower id first
        assert_eq!(ranked[1].0, NodeId(4));
        assert_eq!(ranked[2].0, NodeId(7));
        assert_eq!(ranked[3].0, NodeId(3));
    }
}
