//! Deterministic fork-join helpers for the parallel epoch close.
//!
//! Every helper preserves input order in its output: work is split into
//! **contiguous** chunks, each chunk runs on its own scoped thread, and
//! per-chunk results are reassembled in chunk order. There are no
//! unordered reductions anywhere, so for a fixed input the output is
//! byte-identical for every thread count — `threads == 1` runs inline and
//! doubles as the oracle the parallel paths are property-tested against.

/// Resolve a `close_threads` knob: `0` means "auto" — the
/// `RAYON_NUM_THREADS` environment override when set, else the machine's
/// available parallelism. Any positive value is used as-is.
#[must_use]
pub fn resolve_threads(knob: usize) -> usize {
    if knob == 0 {
        rayon::current_num_threads()
    } else {
        knob
    }
}

/// Apply `f` to every item, splitting the slice into at most `threads`
/// contiguous chunks that run concurrently. Items are mutated disjointly,
/// so the outcome is independent of the split.
pub fn for_each_mut<T, F>(threads: usize, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = len.div_ceil(threads.min(len));
    rayon::scope(|s| {
        for part in items.chunks_mut(chunk) {
            let f = &f;
            s.spawn(move || part.iter_mut().for_each(f));
        }
    });
}

/// Map every item through `f`, returning results in input order. Chunks
/// are contiguous and results are concatenated in chunk order, so the
/// output vector is identical to the sequential map for any `threads`.
pub fn map_mut<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = len.div_ceil(threads.min(len));
    let per_chunk: Vec<Vec<R>> = rayon::scope(|s| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|part| {
                let f = &f;
                s.spawn(move || part.iter_mut().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel close worker panicked")).collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Map indices `0..count` through `f`, returning results in index order.
/// The index space splits into at most `threads` contiguous ranges; range
/// results are concatenated in range order.
pub fn map_indexed<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || count <= 1 {
        return (0..count).map(f).collect();
    }
    let chunk = count.div_ceil(threads.min(count));
    let per_range: Vec<Vec<R>> = rayon::scope(|s| {
        let handles: Vec<_> = (0..count)
            .step_by(chunk)
            .map(|start| {
                let f = &f;
                let end = (start + chunk).min(count);
                s.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel close worker panicked")).collect()
    });
    per_range.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_positive_passthrough() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn for_each_mut_matches_serial_any_threads() {
        for threads in [1, 2, 3, 8, 100] {
            let mut v: Vec<u64> = (0..37).collect();
            for_each_mut(threads, &mut v, |x| *x = *x * 3 + 1);
            let want: Vec<u64> = (0..37).map(|x| x * 3 + 1).collect();
            assert_eq!(v, want, "threads={threads}");
        }
    }

    #[test]
    fn map_mut_preserves_order_any_threads() {
        for threads in [1, 2, 4, 7, 64] {
            let mut v: Vec<usize> = (0..53).collect();
            let got = map_mut(threads, &mut v, |x| *x * 2);
            let want: Vec<usize> = (0..53).map(|x| x * 2).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_indexed_preserves_order_any_threads() {
        for threads in [1, 2, 4, 9, 50] {
            let got = map_indexed(threads, 41, |i| i * i);
            let want: Vec<usize> = (0..41).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn map_mut_empty_and_single() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(map_mut(4, &mut empty, |x| *x).is_empty());
        let mut one = vec![9u32];
        assert_eq!(map_mut(4, &mut one, |x| *x + 1), vec![10]);
    }
}
