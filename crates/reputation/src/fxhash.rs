//! A tiny Fx-style hasher for the hot ingest and snapshot index maps.
//!
//! The std `HashMap` defaults to SipHash-1-3, which is DoS-resistant but
//! costs ~1ns/byte plus finalization — measurable when the epoch pipeline
//! performs one map probe per rating and tens of thousands per close. The
//! keys hashed here are [`crate::id::NodeId`]s (and pairs of them): small,
//! fixed-width integers that the process itself interns, not
//! attacker-chosen strings, so the multiply-xor mix of the rustc/Firefox
//! "FxHash" family is sufficient and ~5× faster.
//!
//! Determinism note: none of the detection outputs depend on map iteration
//! order (deltas are sorted before use, verdicts live in a `BTreeMap`), so
//! swapping the hasher cannot change results — only probe cost. This is
//! asserted by the bit-identity tests across the workspace.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier (golden-ratio derived, same constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher specialized for small integer keys.
///
/// Each `write_*` folds the word in with a rotate + xor + multiply; there
/// is no finalization. Quality is adequate for interned ids; do not use it
/// for untrusted variable-length input.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fixed-width chunks; the id/pair keys hashed here always arrive
        // through the integer fast paths below, this is just completeness.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (zero-sized, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_word_sensitive() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_ne!(b.hash_one(42u64), b.hash_one(43u64));
        assert_ne!(b.hash_one((1u64, 2u64)), b.hash_one((2u64, 1u64)));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        for k in 0..1000u64 {
            *m.entry((k % 37, k / 37)).or_default() += k;
        }
        let mut n: std::collections::HashMap<(u64, u64), u64> = Default::default();
        for k in 0..1000u64 {
            *n.entry((k % 37, k / 37)).or_default() += k;
        }
        assert_eq!(m.len(), n.len());
        for (k, v) in &n {
            assert_eq!(m.get(k), Some(v), "key {k:?}");
        }
    }

    #[test]
    fn byte_slice_path_matches_width() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
