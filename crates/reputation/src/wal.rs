//! Write-ahead log for epoch ratings.
//!
//! Detection state is a pure fold over the rating stream, so durability
//! reduces to making the stream itself durable: every rating a manager
//! accepts is appended to a WAL *before* it is considered recorded, and an
//! epoch-close marker is appended whenever the detection engine seals an
//! epoch. Crash recovery loads the newest valid checkpoint
//! ([`crate::checkpoint`]) and replays the WAL tail — every record with a
//! sequence number greater than the checkpoint's high-water mark — through
//! the same `record`/`close_epoch` entry points the live path uses, which is
//! what makes recovered counters bit-identical to an uncrashed run.
//!
//! # On-disk format
//!
//! ```text
//! header   := "CWAL" version:u32 start_seq:u64                (16 bytes)
//! record   := len:u32 checksum:u64 payload[len]
//! payload  := seq:u64 kind:u8 body
//! body     := kind 0x01 (rating)      rater:u64 ratee:u64 value:u8 time:u64
//!           | kind 0x02 (epoch close) forced:u8
//!           | kind 0x03 (stream session) session:u64 frame_seq:u64 accepted:u64
//! ```
//!
//! All integers little-endian; `checksum` is [`crate::codec::fnv64`] over
//! `payload`. Sequence numbers increase by exactly 1 per record, so replay
//! can detect splices as well as tears.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a record whose length prefix, payload or
//! checksum is incomplete or wrong. [`WalReplay`] stops at the *first* record
//! that fails any validation, reports everything before it, and records how
//! many bytes were discarded — recovery then physically truncates the file to
//! the valid prefix ([`Wal::open_existing`] does this) and resumes appending.
//! Corruption is data, not a programming error: nothing in this module
//! panics on malformed input (fuzzed in `tests/durability_props.rs`).

use crate::codec::{fnv64, ByteReader, ByteWriter, CodecError};
use crate::id::{NodeId, SimTime};
use crate::rating::{Rating, RatingValue};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// File magic: "CWAL".
const WAL_MAGIC: [u8; 4] = *b"CWAL";
/// Format version.
const WAL_VERSION: u32 = 1;
/// Header size in bytes (magic + version + start_seq).
const WAL_HEADER_LEN: usize = 16;
/// Record tag: one rating.
const KIND_RATING: u8 = 0x01;
/// Record tag: epoch close marker.
const KIND_EPOCH_CLOSE: u8 = 0x02;
/// Record tag: stream-session watermark marker.
const KIND_STREAM_SESSION: u8 = 0x03;
/// Upper bound on a sane record payload; anything larger is treated as a
/// torn/corrupt length prefix. The largest legal payload (a rating) is
/// 34 bytes, so this is generous headroom for future record kinds.
const MAX_PAYLOAD_LEN: u32 = 4096;
/// Largest encoded payload the live writer produces (a rating record:
/// seq 8 + kind 1 + rater 8 + ratee 8 + value 1 + time 8).
const MAX_LIVE_PAYLOAD: usize = 34;
/// Appends encode into an in-memory buffer; once it holds this many bytes
/// it is written to the OS in one `write(2)`. Bounds writer memory while
/// amortizing the syscall over thousands of records.
const WRITE_BUF_FLUSH: usize = 256 * 1024;

/// When WAL appends are forced to stable storage.
///
/// The WAL itself only buffers ([`Wal::append`] reaches the OS page cache,
/// [`Wal::sync`] makes it durable); callers consult a `SyncPolicy` to decide
/// *when* to sync. Epoch-close markers always sync regardless of policy —
/// epoch boundaries are the recovery anchors and must never be lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record: zero loss window, one fsync per append.
    PerRecord,
    /// Sync once at least `k` records are pending (`k ≥ 1`; 0 behaves as
    /// 1). Batched appends count whole batches, so a batch larger than `k`
    /// still costs a single fsync — the group-commit case.
    EveryK(u64),
    /// Never sync mid-epoch; only group-commit points (epoch closes,
    /// explicit [`Wal::sync`] calls) make records durable.
    Group,
    /// Asynchronous group commit: a dedicated committer thread fsyncs in
    /// the background whenever `max_bytes` of encoded records accumulate
    /// or `max_delay_micros` pass since the oldest uncommitted append,
    /// whichever comes first — so the append path never blocks on fsync.
    /// [`Wal::sync`] (epoch closes, checkpoints, shutdown) becomes a
    /// barrier that waits for the committer to confirm durability.
    /// Enable with [`Wal::enable_group_commit`].
    Async {
        /// Commit once this many encoded bytes are pending (0 behaves as
        /// 1: every flush requests a commit).
        max_bytes: u32,
        /// Commit once the oldest pending append is this old.
        max_delay_micros: u32,
    },
}

impl SyncPolicy {
    /// The historical default: group-fsync every 64 appends.
    pub const DEFAULT: SyncPolicy = SyncPolicy::EveryK(64);

    /// Default asynchronous group commit: flush at 256 KiB of encoded
    /// records or 2 ms of latency, whichever first.
    pub const ASYNC_DEFAULT: SyncPolicy =
        SyncPolicy::Async { max_bytes: WRITE_BUF_FLUSH as u32, max_delay_micros: 2_000 };

    /// Whether `pending` un-synced appends require a sync now.
    ///
    /// `Async` never comes due: the committer thread owns the fsync
    /// schedule, callers only issue barriers via [`Wal::sync`].
    #[inline]
    pub fn due(self, pending: u64) -> bool {
        match self {
            SyncPolicy::PerRecord => pending > 0,
            SyncPolicy::EveryK(k) => pending >= k.max(1),
            SyncPolicy::Group => false,
            SyncPolicy::Async { .. } => false,
        }
    }
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::DEFAULT
    }
}

/// One logical WAL entry, decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A rating accepted into the current epoch.
    Rating(Rating),
    /// The engine closed an epoch here. `forced` marks a close triggered by
    /// the epoch-buffer memory watermark rather than the caller's schedule.
    EpochClose {
        /// Whether the watermark forced this close.
        forced: bool,
    },
    /// A resumable insert-stream frame committed here: every rating of
    /// frame `frame_seq` of session `session` precedes this marker, so a
    /// replayed WAL rebuilds the per-session durable watermark exactly.
    StreamSession {
        /// Client-chosen session id (never 0 on disk).
        session: u64,
        /// 1-based frame number the marker seals.
        frame_seq: u64,
        /// Cumulative ratings accepted for the session through this frame.
        accepted: u64,
    },
}

/// Errors from WAL file operations. Decode problems inside the record stream
/// are *not* errors — they terminate replay and are reported in
/// [`WalReplay`] instead.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem I/O failed.
    Io(io::Error),
    /// The file header is missing, truncated, or from a different format.
    BadHeader,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadHeader => write!(f, "WAL header missing or invalid"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result of scanning a WAL byte stream: the valid prefix, decoded.
#[derive(Clone, Debug, Default)]
pub struct WalReplay {
    /// Decoded records of the valid prefix, in append order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// Bytes after the valid prefix that were discarded as torn/corrupt.
    pub truncated_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<CodecError>,
    /// Sequence number the next append should use.
    pub next_seq: u64,
}

impl WalReplay {
    /// Whether the scan hit a torn or corrupt record.
    pub fn is_truncated(&self) -> bool {
        self.truncated_bytes > 0
    }
}

/// Encode one record (frame + checksum + payload) by appending to `out`.
/// Allocation-free in steady state: the payload stages through a stack
/// array and `out` is a reusable buffer that only grows until its
/// high-water mark. The byte layout is pinned by
/// `batched_appends_replay_identically_to_looped_appends`.
fn encode_record_into(seq: u64, record: &WalRecord, out: &mut Vec<u8>) {
    let mut payload = [0u8; MAX_LIVE_PAYLOAD];
    payload[..8].copy_from_slice(&seq.to_le_bytes());
    let mut n = 8;
    match record {
        WalRecord::Rating(r) => {
            payload[n] = KIND_RATING;
            payload[n + 1..n + 9].copy_from_slice(&r.rater.raw().to_le_bytes());
            payload[n + 9..n + 17].copy_from_slice(&r.ratee.raw().to_le_bytes());
            payload[n + 17] = match r.value {
                RatingValue::Negative => 0,
                RatingValue::Neutral => 1,
                RatingValue::Positive => 2,
            };
            payload[n + 18..n + 26].copy_from_slice(&r.time.raw().to_le_bytes());
            n += 26;
        }
        WalRecord::EpochClose { forced } => {
            payload[n] = KIND_EPOCH_CLOSE;
            payload[n + 1] = u8::from(*forced);
            n += 2;
        }
        WalRecord::StreamSession { session, frame_seq, accepted } => {
            payload[n] = KIND_STREAM_SESSION;
            payload[n + 1..n + 9].copy_from_slice(&session.to_le_bytes());
            payload[n + 9..n + 17].copy_from_slice(&frame_seq.to_le_bytes());
            payload[n + 17..n + 25].copy_from_slice(&accepted.to_le_bytes());
            n += 25;
        }
    }
    let payload = &payload[..n];
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

#[cfg(test)]
fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(MAX_LIVE_PAYLOAD + 12);
    encode_record_into(seq, record, &mut out);
    out
}

fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), CodecError> {
    let mut r = ByteReader::new(payload);
    let seq = r.get_u64()?;
    let kind = r.get_u8()?;
    let record = match kind {
        KIND_RATING => {
            let rater = NodeId(r.get_u64()?);
            let ratee = NodeId(r.get_u64()?);
            let value = match r.get_u8()? {
                0 => RatingValue::Negative,
                1 => RatingValue::Neutral,
                2 => RatingValue::Positive,
                t => return Err(CodecError::InvalidTag(t)),
            };
            let time = SimTime(r.get_u64()?);
            WalRecord::Rating(Rating::new(rater, ratee, value, time))
        }
        KIND_EPOCH_CLOSE => {
            let forced = match r.get_u8()? {
                0 => false,
                1 => true,
                t => return Err(CodecError::InvalidTag(t)),
            };
            WalRecord::EpochClose { forced }
        }
        KIND_STREAM_SESSION => WalRecord::StreamSession {
            session: r.get_u64()?,
            frame_seq: r.get_u64()?,
            accepted: r.get_u64()?,
        },
        t => return Err(CodecError::InvalidTag(t)),
    };
    if !r.is_exhausted() {
        return Err(CodecError::BadLength);
    }
    Ok((seq, record))
}

/// Scan raw WAL bytes (header included) and decode the valid prefix.
///
/// Never panics: any malformed region simply ends the scan. Records must
/// carry consecutive sequence numbers starting from the header's
/// `start_seq`; a gap or repeat is treated as corruption at that point.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, WalError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(WalError::BadHeader);
    }
    let mut hdr = ByteReader::new(&bytes[..WAL_HEADER_LEN]);
    let magic = hdr.get_bytes(4).map_err(|_| WalError::BadHeader)?;
    let version = hdr.get_u32().map_err(|_| WalError::BadHeader)?;
    if magic != WAL_MAGIC || version != WAL_VERSION {
        return Err(WalError::BadHeader);
    }
    let start_seq = hdr.get_u64().map_err(|_| WalError::BadHeader)?;

    let mut replay =
        WalReplay { valid_len: WAL_HEADER_LEN as u64, next_seq: start_seq, ..WalReplay::default() };
    let mut pos = WAL_HEADER_LEN;
    let mut expect_seq = start_seq;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        let mut frame = ByteReader::new(rest);
        let outcome = (|| -> Result<(usize, u64, WalRecord), CodecError> {
            let len = frame.get_u32()?;
            if len > MAX_PAYLOAD_LEN {
                return Err(CodecError::BadLength);
            }
            let checksum = frame.get_u64()?;
            let payload = frame.get_bytes(len as usize)?;
            if fnv64(payload) != checksum {
                return Err(CodecError::ChecksumMismatch);
            }
            let (seq, record) = decode_payload(payload)?;
            Ok((frame.pos(), seq, record))
        })();
        match outcome {
            Ok((consumed, seq, record)) if seq == expect_seq => {
                pos += consumed;
                replay.valid_len = pos as u64;
                replay.records.push((seq, record));
                expect_seq += 1;
            }
            Ok(_) => {
                replay.corruption = Some(CodecError::BadLength);
                break;
            }
            Err(e) => {
                replay.corruption = Some(e);
                break;
            }
        }
    }
    replay.truncated_bytes = bytes.len() as u64 - replay.valid_len;
    replay.next_seq = expect_seq;
    Ok(replay)
}

/// Message to the asynchronous committer thread.
enum CommitMsg {
    /// Make the file durable up to this logical byte length.
    Commit(u64),
    /// Final commit, then exit.
    Shutdown,
}

/// State shared between the writer and its committer thread.
#[derive(Debug, Default)]
struct CommitProgress {
    /// Logical byte length confirmed durable by `sync_data`.
    durable_len: u64,
    /// Fsyncs the committer has issued.
    fsyncs: u64,
    /// First I/O failure, latched; surfaced at the next barrier.
    failed: Option<String>,
}

#[derive(Debug)]
struct CommitShared {
    progress: Mutex<CommitProgress>,
    cv: Condvar,
}

/// Handle to the committer thread (see [`Wal::enable_group_commit`]).
#[derive(Debug)]
struct Committer {
    tx: Sender<CommitMsg>,
    shared: Arc<CommitShared>,
    join: Option<JoinHandle<()>>,
}

/// The committer loop: drain commit requests (coalescing bursts into the
/// highest requested length — one fsync covers them all), `sync_data`,
/// publish the new durable watermark. Never panics on I/O failure; the
/// error is latched and re-raised at the writer's next barrier.
fn committer_loop(file: File, rx: Receiver<CommitMsg>, shared: Arc<CommitShared>) {
    let mut target = 0u64;
    loop {
        let mut shutdown = false;
        match rx.recv() {
            Ok(CommitMsg::Commit(len)) => target = target.max(len),
            Ok(CommitMsg::Shutdown) | Err(_) => shutdown = true,
        }
        while let Ok(msg) = rx.try_recv() {
            match msg {
                CommitMsg::Commit(len) => target = target.max(len),
                CommitMsg::Shutdown => shutdown = true,
            }
        }
        let durable = shared.progress.lock().map(|p| p.durable_len).unwrap_or(u64::MAX);
        if target > durable {
            let res = file.sync_data();
            if let Ok(mut p) = shared.progress.lock() {
                p.fsyncs += 1;
                match res {
                    Ok(()) => p.durable_len = p.durable_len.max(target),
                    Err(e) => {
                        if p.failed.is_none() {
                            p.failed = Some(e.to_string());
                        }
                        // fail the barrier rather than hang it
                        p.durable_len = p.durable_len.max(target);
                    }
                }
            }
            shared.cv.notify_all();
        }
        if shutdown {
            break;
        }
    }
}

/// Detached wait handle on a group-commit committer's durable watermark
/// (see [`Wal::waiter`]). Holds only the committer's progress state, so
/// waiting does not block appends or other readers of the `Wal`.
#[derive(Debug)]
pub struct DurableWaiter {
    shared: Arc<CommitShared>,
}

impl DurableWaiter {
    /// Block until the durable watermark covers `target`, the committer
    /// latches an I/O failure, or `timeout` elapses. Returns whether the
    /// watermark covers `target` (a latched failure reads as `false`; the
    /// caller's next blocking [`Wal::sync`] re-raises it).
    pub fn wait_covered(&self, target: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let Ok(mut p) = self.shared.progress.lock() else { return false };
        while p.durable_len < target && p.failed.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let Ok((next, _)) = self.shared.cv.wait_timeout(p, deadline - now) else {
                return false;
            };
            p = next;
        }
        p.durable_len >= target
    }
}

/// An append-only write-ahead log file.
///
/// Appends encode into an internal buffer that is written to the OS in
/// [`WRITE_BUF_FLUSH`]-sized chunks; [`Wal::sync`] flushes and makes
/// everything durable. Callers schedule syncs via [`SyncPolicy`] (per
/// record, every k records, or group commit at epoch closes) and always
/// sync before a checkpoint. [`Wal::enable_group_commit`] additionally
/// moves fsyncs to a background committer thread with bounded-latency
/// batching — the [`SyncPolicy::Async`] mode.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    /// Logical length: header + every encoded record, including bytes
    /// still in `buf`.
    len: u64,
    /// Byte span `[start, end)` of the most recent append, for crash-injection
    /// harnesses that tear the final record.
    last_record_span: (u64, u64),
    /// Encoded-but-unwritten records (reused; never shrinks).
    buf: Vec<u8>,
    /// Logical byte length confirmed durable by a synchronous fsync
    /// ([`Wal::sync`] without a committer). With group commit on, the
    /// committer's progress supersedes this — see [`Wal::durable_len`].
    synced_len: u64,
    /// Group-commit trigger thresholds, when async mode is on.
    group: Option<(usize, Duration)>,
    /// Committer thread, when async mode is on.
    committer: Option<Committer>,
    /// When the oldest byte not yet handed to the committer was appended
    /// (drives the max-delay flush trigger).
    pending_since: Option<Instant>,
}

impl Wal {
    /// Create a fresh WAL at `path` (truncating any existing file), with
    /// sequence numbers starting at `start_seq`.
    pub fn create(path: &Path, start_seq: u64) -> Result<Self, WalError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let mut hdr = ByteWriter::with_capacity(WAL_HEADER_LEN);
        hdr.put_bytes(&WAL_MAGIC);
        hdr.put_u32(WAL_VERSION);
        hdr.put_u64(start_seq);
        file.write_all(hdr.as_bytes())?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: start_seq,
            len: WAL_HEADER_LEN as u64,
            last_record_span: (WAL_HEADER_LEN as u64, WAL_HEADER_LEN as u64),
            buf: Vec::new(),
            synced_len: WAL_HEADER_LEN as u64,
            group: None,
            committer: None,
            pending_since: None,
        })
    }

    /// Open an existing WAL, replaying it first. The file is truncated to its
    /// valid prefix (dropping any torn tail) and positioned for appending.
    /// Returns the writer plus the replay of the surviving records.
    pub fn open_existing(path: &Path) -> Result<(Self, WalReplay), WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = replay_bytes(&bytes)?;
        if replay.truncated_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            next_seq: replay.next_seq,
            len: replay.valid_len,
            last_record_span: (replay.valid_len, replay.valid_len),
            buf: Vec::new(),
            synced_len: replay.valid_len,
            group: None,
            committer: None,
            pending_since: None,
        };
        Ok((wal, replay))
    }

    /// Switch to asynchronous group commit ([`SyncPolicy::Async`]): spawn
    /// a committer thread over a clone of the file handle. From here on,
    /// appends hand encoded bytes to the committer whenever `max_bytes`
    /// accumulate or the oldest pending append is `max_delay_micros` old,
    /// and the committer fsyncs in the background; [`Wal::sync`] becomes a
    /// barrier that waits for the durable watermark to catch up. The byte
    /// stream written is identical to synchronous mode — replay cannot
    /// tell which mode produced a log.
    pub fn enable_group_commit(
        &mut self,
        max_bytes: u32,
        max_delay_micros: u32,
    ) -> Result<(), WalError> {
        if self.committer.is_some() {
            return Ok(());
        }
        let file = self.file.try_clone()?;
        let shared = Arc::new(CommitShared {
            progress: Mutex::new(CommitProgress {
                durable_len: self.os_len(),
                ..Default::default()
            }),
            cv: Condvar::new(),
        });
        let (tx, rx) = channel();
        let loop_shared = Arc::clone(&shared);
        let join = std::thread::spawn(move || committer_loop(file, rx, loop_shared));
        self.committer = Some(Committer { tx, shared, join: Some(join) });
        self.group =
            Some(((max_bytes as usize).max(1), Duration::from_micros(max_delay_micros as u64)));
        Ok(())
    }

    /// Bytes written to the OS so far (logical length minus the encode
    /// buffer's backlog).
    #[inline]
    fn os_len(&self) -> u64 {
        self.len - self.buf.len() as u64
    }

    /// Write the encode buffer to the OS (no fsync) and clear it.
    fn flush_os(&mut self) -> Result<(), WalError> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Ask the committer to make everything written so far durable
    /// (non-blocking).
    fn request_commit(&mut self) -> Result<(), WalError> {
        self.flush_os()?;
        if let Some(c) = &self.committer {
            let _ = c.tx.send(CommitMsg::Commit(self.len));
        }
        self.pending_since = None;
        Ok(())
    }

    /// Post-append bookkeeping: flush the encode buffer when it is full,
    /// and in group-commit mode also when the max-bytes or max-delay
    /// trigger fires.
    fn after_append(&mut self) -> Result<(), WalError> {
        match self.group {
            None => {
                if self.buf.len() >= WRITE_BUF_FLUSH {
                    self.flush_os()?;
                }
            }
            Some((max_bytes, max_delay)) => {
                let since = *self.pending_since.get_or_insert_with(Instant::now);
                if self.buf.len() >= max_bytes || since.elapsed() >= max_delay {
                    self.request_commit()?;
                }
            }
        }
        Ok(())
    }

    /// Encode one record into the buffer and advance the bookkeeping.
    #[inline]
    fn encode_append(&mut self, record: &WalRecord) -> u64 {
        let seq = self.next_seq;
        let before = self.buf.len();
        encode_record_into(seq, record, &mut self.buf);
        let encoded = (self.buf.len() - before) as u64;
        self.last_record_span = (self.len, self.len + encoded);
        self.len += encoded;
        self.next_seq += 1;
        seq
    }

    /// Append one record, returning its sequence number. The bytes are
    /// buffered (reaching the OS at the next flush boundary) and only
    /// crash-durable after [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let seq = self.encode_append(record);
        self.after_append()?;
        Ok(seq)
    }

    /// Append a batch of rating records, returning the sequence-number
    /// range `[start, end)` they occupy. Encoding is record-for-record
    /// identical to looping [`Wal::append`] — replay cannot tell the
    /// difference — but the whole batch shares the encode buffer's flush
    /// cadence, so a batch costs at most one `write(2)` per
    /// [`WRITE_BUF_FLUSH`] bytes.
    pub fn append_ratings(&mut self, ratings: &[Rating]) -> Result<(u64, u64), WalError> {
        let start = self.next_seq;
        for &r in ratings {
            self.encode_append(&WalRecord::Rating(r));
            self.after_append()?;
        }
        Ok((start, self.next_seq))
    }

    /// Force appended records to stable storage (group fsync point). In
    /// group-commit mode this is the barrier: it hands the backlog to the
    /// committer and blocks until the durable watermark covers every
    /// append so far (re-raising any latched committer I/O error).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.flush_os()?;
        match &self.committer {
            None => {
                self.file.sync_data()?;
                self.synced_len = self.len;
            }
            Some(c) => {
                let target = self.len;
                let _ = c.tx.send(CommitMsg::Commit(target));
                self.pending_since = None;
                let mut progress = c.shared.progress.lock().expect("WAL committer mutex poisoned");
                while progress.durable_len < target && progress.failed.is_none() {
                    progress = c.shared.cv.wait(progress).expect("WAL committer mutex poisoned");
                }
                if let Some(msg) = progress.failed.take() {
                    return Err(WalError::Io(io::Error::other(msg)));
                }
            }
        }
        Ok(())
    }

    /// Write buffered encodes to the OS without forcing durability, so
    /// readers of [`Wal::path`] observe every append so far. Crash
    /// durability still requires [`Wal::sync`].
    pub fn flush(&mut self) -> Result<(), WalError> {
        self.flush_os()
    }

    /// Logical byte length confirmed durable — the **durable watermark**
    /// the streaming data plane acks against. With group commit on, this
    /// is the committer thread's confirmed progress; in synchronous modes
    /// it is the length as of the last [`Wal::sync`]. Monotone, and always
    /// ≤ [`Wal::len_bytes`].
    pub fn durable_len(&self) -> u64 {
        match &self.committer {
            Some(c) => c
                .shared
                .progress
                .lock()
                .map(|p| p.durable_len.max(self.synced_len))
                .unwrap_or(self.synced_len),
            None => self.synced_len,
        }
    }

    /// Non-blocking durability nudge: hand everything appended so far to
    /// the background committer so the durable watermark catches up soon
    /// without stalling the append path. A no-op without group commit —
    /// synchronous policies advance the watermark in [`Wal::sync`].
    pub fn request_durable(&mut self) -> Result<(), WalError> {
        if self.committer.is_some() {
            self.request_commit()?;
        }
        Ok(())
    }

    /// A handle for blocking on the committer's durable watermark without
    /// holding any lock on the `Wal` itself (`None` without group commit).
    /// Lets an ack path park on the committer's condvar — woken the
    /// instant an fsync completes — while other threads keep appending.
    pub fn waiter(&self) -> Option<DurableWaiter> {
        self.committer.as_ref().map(|c| DurableWaiter { shared: Arc::clone(&c.shared) })
    }

    /// Fsyncs issued by the background committer (0 without group commit).
    pub fn committer_fsyncs(&self) -> u64 {
        self.committer
            .as_ref()
            .and_then(|c| c.shared.progress.lock().ok().map(|p| p.fsyncs))
            .unwrap_or(0)
    }

    /// Sequence number the next append will use.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current file length in bytes.
    #[inline]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte span `[start, end)` of the most recently appended record.
    #[inline]
    pub fn last_record_span(&self) -> (u64, u64) {
        self.last_record_span
    }
}

impl Drop for Wal {
    /// Flush buffered encodes to the OS and retire the committer thread.
    /// Dropping does *not* fsync (matching the synchronous writer's drop
    /// semantics) — durability barriers are explicit [`Wal::sync`] calls.
    fn drop(&mut self) {
        let _ = self.flush_os();
        if let Some(c) = &mut self.committer {
            let _ = c.tx.send(CommitMsg::Shutdown);
            if let Some(join) = c.join.take() {
                let _ = join.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "collusion-wal-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn rating(j: u64, i: u64, t: u64) -> Rating {
        Rating::positive(NodeId(j), NodeId(i), SimTime(t))
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let dir = scratch("roundtrip");
        let path = dir.join("test.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        let records = [
            WalRecord::Rating(rating(1, 2, 0)),
            WalRecord::Rating(Rating::negative(NodeId(3), NodeId(2), SimTime(1))),
            WalRecord::EpochClose { forced: false },
            WalRecord::Rating(Rating::neutral(NodeId(4), NodeId(5), SimTime(2))),
            WalRecord::StreamSession { session: 0xDEAD_BEEF, frame_seq: 3, accepted: 768 },
            WalRecord::EpochClose { forced: true },
            WalRecord::StreamSession { session: u64::MAX, frame_seq: u64::MAX, accepted: 0 },
        ];
        for (k, r) in records.iter().enumerate() {
            assert_eq!(wal.append(r).unwrap(), k as u64);
        }
        wal.sync().unwrap();
        let (wal2, replay) = Wal::open_existing(&path).unwrap();
        assert!(!replay.is_truncated());
        assert_eq!(replay.corruption, None);
        assert_eq!(replay.records.len(), records.len());
        for (k, (seq, rec)) in replay.records.iter().enumerate() {
            assert_eq!(*seq, k as u64);
            assert_eq!(rec, &records[k]);
        }
        assert_eq!(wal2.next_seq(), records.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let path = dir.join("torn.wal");
        let mut wal = Wal::create(&path, 10).unwrap();
        wal.append(&WalRecord::Rating(rating(1, 2, 0))).unwrap();
        wal.append(&WalRecord::Rating(rating(3, 2, 1))).unwrap();
        wal.sync().unwrap();
        let (start, end) = wal.last_record_span();
        drop(wal);
        // tear the final record in half
        let tear_at = start + (end - start) / 2;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(tear_at).unwrap();
        drop(f);

        let (mut wal, replay) = Wal::open_existing(&path).unwrap();
        assert!(replay.is_truncated());
        assert!(replay.corruption.is_some());
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0, 10);
        assert_eq!(replay.next_seq, 11);
        // appending after truncation continues the sequence cleanly
        assert_eq!(wal.append(&WalRecord::EpochClose { forced: false }).unwrap(), 11);
        wal.sync().unwrap();
        let (_, replay) = Wal::open_existing(&path).unwrap();
        assert!(!replay.is_truncated());
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_payload_stops_replay_at_checksum() {
        let dir = scratch("flip");
        let path = dir.join("flip.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&WalRecord::Rating(rating(1, 2, 0))).unwrap();
        wal.append(&WalRecord::Rating(rating(3, 2, 1))).unwrap();
        wal.sync().unwrap();
        let (start, _) = wal.last_record_span();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a bit inside the second record's payload
        let idx = start as usize + 14;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.corruption, Some(CodecError::ChecksumMismatch));
        assert!(replay.is_truncated());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_appends_replay_identically_to_looped_appends() {
        let dir = scratch("batch");
        let looped_path = dir.join("looped.wal");
        let batched_path = dir.join("batched.wal");
        let ratings: Vec<Rating> = (0..37).map(|k| rating(k % 5 + 1, k % 7 + 10, k)).collect();
        let mut looped = Wal::create(&looped_path, 3).unwrap();
        for &r in &ratings {
            looped.append(&WalRecord::Rating(r)).unwrap();
        }
        looped.sync().unwrap();
        let mut batched = Wal::create(&batched_path, 3).unwrap();
        let (start, end) = batched.append_ratings(&ratings).unwrap();
        assert_eq!((start, end), (3, 3 + ratings.len() as u64));
        assert_eq!(batched.last_record_span(), looped.last_record_span());
        batched.sync().unwrap();
        assert_eq!(
            std::fs::read(&looped_path).unwrap(),
            std::fs::read(&batched_path).unwrap(),
            "batched encoding must be byte-identical"
        );
        // empty batch: no-op, sequence unchanged
        assert_eq!(batched.append_ratings(&[]).unwrap(), (end, end));
        assert_eq!(batched.next_seq(), end);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policy_due_semantics() {
        assert!(SyncPolicy::PerRecord.due(1));
        assert!(!SyncPolicy::PerRecord.due(0));
        assert!(!SyncPolicy::EveryK(64).due(63));
        assert!(SyncPolicy::EveryK(64).due(64));
        assert!(SyncPolicy::EveryK(64).due(200));
        assert!(SyncPolicy::EveryK(0).due(1), "k=0 behaves as k=1");
        assert!(!SyncPolicy::Group.due(u64::MAX));
        assert!(!SyncPolicy::ASYNC_DEFAULT.due(u64::MAX), "async never comes due inline");
        assert_eq!(SyncPolicy::default(), SyncPolicy::EveryK(64));
    }

    #[test]
    fn group_commit_stream_is_byte_identical_to_sync_mode() {
        let dir = scratch("group-commit");
        let sync_path = dir.join("sync.wal");
        let async_path = dir.join("async.wal");
        let ratings: Vec<Rating> = (0..500).map(|k| rating(k % 9 + 1, k % 11 + 20, k)).collect();

        let mut plain = Wal::create(&sync_path, 0).unwrap();
        let mut grouped = Wal::create(&async_path, 0).unwrap();
        // tiny max_bytes so the committer is exercised mid-stream, not
        // only at the closing barrier
        grouped.enable_group_commit(512, 1_000_000).unwrap();
        for (k, &r) in ratings.iter().enumerate() {
            plain.append(&WalRecord::Rating(r)).unwrap();
            grouped.append(&WalRecord::Rating(r)).unwrap();
            if k % 100 == 99 {
                plain.append(&WalRecord::EpochClose { forced: false }).unwrap();
                plain.sync().unwrap();
                grouped.append(&WalRecord::EpochClose { forced: false }).unwrap();
                grouped.sync().unwrap();
            }
        }
        assert_eq!(plain.next_seq(), grouped.next_seq());
        assert_eq!(plain.len_bytes(), grouped.len_bytes());
        assert_eq!(plain.last_record_span(), grouped.last_record_span());
        assert!(grouped.committer_fsyncs() > 0, "committer never fsynced");
        drop(plain);
        drop(grouped);
        assert_eq!(
            std::fs::read(&sync_path).unwrap(),
            std::fs::read(&async_path).unwrap(),
            "group-commit byte stream must be identical to synchronous mode"
        );
        let (_, replay) = Wal::open_existing(&async_path).unwrap();
        assert!(!replay.is_truncated());
        assert_eq!(replay.records.len(), 505);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_barrier_makes_tail_durable() {
        let dir = scratch("group-barrier");
        let path = dir.join("barrier.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        // huge thresholds: nothing commits until the explicit barrier
        wal.enable_group_commit(u32::MAX, u32::MAX).unwrap();
        for k in 0..300 {
            wal.append(&WalRecord::Rating(rating(k + 1, 2, k))).unwrap();
        }
        let buffered = wal.len_bytes();
        wal.sync().unwrap();
        assert!(wal.committer_fsyncs() >= 1);
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, buffered, "barrier flushed every buffered byte");
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 300);
        assert!(!replay.is_truncated());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_watermark_tracks_sync_in_synchronous_mode() {
        let dir = scratch("watermark-sync");
        let path = dir.join("wm.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        assert_eq!(wal.durable_len(), WAL_HEADER_LEN as u64);
        for k in 0..10 {
            wal.append(&WalRecord::Rating(rating(k + 1, 2, k))).unwrap();
        }
        // appended but not synced: the watermark must not move
        assert_eq!(wal.durable_len(), WAL_HEADER_LEN as u64);
        assert!(wal.durable_len() < wal.len_bytes());
        wal.request_durable().unwrap(); // no-op without a committer
        assert_eq!(wal.durable_len(), WAL_HEADER_LEN as u64);
        wal.sync().unwrap();
        assert_eq!(wal.durable_len(), wal.len_bytes());
        drop(wal);
        // reopening an intact file resumes the watermark at its length
        let (wal, replay) = Wal::open_existing(&path).unwrap();
        assert!(!replay.is_truncated());
        assert_eq!(wal.durable_len(), wal.len_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_watermark_catches_up_under_group_commit() {
        let dir = scratch("watermark-async");
        let path = dir.join("wm.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        // huge thresholds: only explicit nudges/barriers commit
        wal.enable_group_commit(u32::MAX, u32::MAX).unwrap();
        for k in 0..50 {
            wal.append(&WalRecord::Rating(rating(k + 1, 2, k))).unwrap();
        }
        let target = wal.len_bytes();
        wal.request_durable().unwrap();
        // the nudge is async; poll until the committer confirms
        let deadline = Instant::now() + Duration::from_secs(5);
        while wal.durable_len() < target {
            assert!(Instant::now() < deadline, "committer never caught up");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(wal.durable_len(), target);
        // the barrier agrees with the watermark
        wal.append(&WalRecord::EpochClose { forced: false }).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.durable_len(), wal.len_bytes());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_header_is_an_error_not_a_panic() {
        assert!(matches!(replay_bytes(b""), Err(WalError::BadHeader)));
        assert!(matches!(replay_bytes(b"CWALxx"), Err(WalError::BadHeader)));
        let mut bogus = Vec::from(*b"NOPE");
        bogus.extend_from_slice(&[0u8; 12]);
        assert!(matches!(replay_bytes(&bogus), Err(WalError::BadHeader)));
    }

    #[test]
    fn sequence_gap_treated_as_corruption() {
        let mut bytes = {
            let mut hdr = ByteWriter::new();
            hdr.put_bytes(&WAL_MAGIC);
            hdr.put_u32(WAL_VERSION);
            hdr.put_u64(0);
            hdr.into_bytes()
        };
        bytes.extend_from_slice(&encode_record(0, &WalRecord::EpochClose { forced: false }));
        // next record skips seq 1
        bytes.extend_from_slice(&encode_record(2, &WalRecord::EpochClose { forced: false }));
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.is_truncated());
        assert_eq!(replay.next_seq, 1);
    }
}
