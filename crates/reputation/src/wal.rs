//! Write-ahead log for epoch ratings.
//!
//! Detection state is a pure fold over the rating stream, so durability
//! reduces to making the stream itself durable: every rating a manager
//! accepts is appended to a WAL *before* it is considered recorded, and an
//! epoch-close marker is appended whenever the detection engine seals an
//! epoch. Crash recovery loads the newest valid checkpoint
//! ([`crate::checkpoint`]) and replays the WAL tail — every record with a
//! sequence number greater than the checkpoint's high-water mark — through
//! the same `record`/`close_epoch` entry points the live path uses, which is
//! what makes recovered counters bit-identical to an uncrashed run.
//!
//! # On-disk format
//!
//! ```text
//! header   := "CWAL" version:u32 start_seq:u64                (16 bytes)
//! record   := len:u32 checksum:u64 payload[len]
//! payload  := seq:u64 kind:u8 body
//! body     := kind 0x01 (rating)      rater:u64 ratee:u64 value:u8 time:u64
//!           | kind 0x02 (epoch close) forced:u8
//! ```
//!
//! All integers little-endian; `checksum` is [`crate::codec::fnv64`] over
//! `payload`. Sequence numbers increase by exactly 1 per record, so replay
//! can detect splices as well as tears.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a record whose length prefix, payload or
//! checksum is incomplete or wrong. [`WalReplay`] stops at the *first* record
//! that fails any validation, reports everything before it, and records how
//! many bytes were discarded — recovery then physically truncates the file to
//! the valid prefix ([`Wal::open_existing`] does this) and resumes appending.
//! Corruption is data, not a programming error: nothing in this module
//! panics on malformed input (fuzzed in `tests/durability_props.rs`).

use crate::codec::{fnv64, ByteReader, ByteWriter, CodecError};
use crate::id::{NodeId, SimTime};
use crate::rating::{Rating, RatingValue};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: "CWAL".
const WAL_MAGIC: [u8; 4] = *b"CWAL";
/// Format version.
const WAL_VERSION: u32 = 1;
/// Header size in bytes (magic + version + start_seq).
const WAL_HEADER_LEN: usize = 16;
/// Record tag: one rating.
const KIND_RATING: u8 = 0x01;
/// Record tag: epoch close marker.
const KIND_EPOCH_CLOSE: u8 = 0x02;
/// Upper bound on a sane record payload; anything larger is treated as a
/// torn/corrupt length prefix. The largest legal payload (a rating) is
/// 34 bytes, so this is generous headroom for future record kinds.
const MAX_PAYLOAD_LEN: u32 = 4096;

/// When WAL appends are forced to stable storage.
///
/// The WAL itself only buffers ([`Wal::append`] reaches the OS page cache,
/// [`Wal::sync`] makes it durable); callers consult a `SyncPolicy` to decide
/// *when* to sync. Epoch-close markers always sync regardless of policy —
/// epoch boundaries are the recovery anchors and must never be lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every record: zero loss window, one fsync per append.
    PerRecord,
    /// Sync once at least `k` records are pending (`k ≥ 1`; 0 behaves as
    /// 1). Batched appends count whole batches, so a batch larger than `k`
    /// still costs a single fsync — the group-commit case.
    EveryK(u64),
    /// Never sync mid-epoch; only group-commit points (epoch closes,
    /// explicit [`Wal::sync`] calls) make records durable.
    Group,
}

impl SyncPolicy {
    /// The historical default: group-fsync every 64 appends.
    pub const DEFAULT: SyncPolicy = SyncPolicy::EveryK(64);

    /// Whether `pending` un-synced appends require a sync now.
    #[inline]
    pub fn due(self, pending: u64) -> bool {
        match self {
            SyncPolicy::PerRecord => pending > 0,
            SyncPolicy::EveryK(k) => pending >= k.max(1),
            SyncPolicy::Group => false,
        }
    }
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy::DEFAULT
    }
}

/// One logical WAL entry, decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A rating accepted into the current epoch.
    Rating(Rating),
    /// The engine closed an epoch here. `forced` marks a close triggered by
    /// the epoch-buffer memory watermark rather than the caller's schedule.
    EpochClose {
        /// Whether the watermark forced this close.
        forced: bool,
    },
}

/// Errors from WAL file operations. Decode problems inside the record stream
/// are *not* errors — they terminate replay and are reported in
/// [`WalReplay`] instead.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem I/O failed.
    Io(io::Error),
    /// The file header is missing, truncated, or from a different format.
    BadHeader,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadHeader => write!(f, "WAL header missing or invalid"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Result of scanning a WAL byte stream: the valid prefix, decoded.
#[derive(Clone, Debug, Default)]
pub struct WalReplay {
    /// Decoded records of the valid prefix, in append order.
    pub records: Vec<(u64, WalRecord)>,
    /// Byte length of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// Bytes after the valid prefix that were discarded as torn/corrupt.
    pub truncated_bytes: u64,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<CodecError>,
    /// Sequence number the next append should use.
    pub next_seq: u64,
}

impl WalReplay {
    /// Whether the scan hit a torn or corrupt record.
    pub fn is_truncated(&self) -> bool {
        self.truncated_bytes > 0
    }
}

fn encode_record(seq: u64, record: &WalRecord) -> Vec<u8> {
    let mut payload = ByteWriter::with_capacity(40);
    payload.put_u64(seq);
    match record {
        WalRecord::Rating(r) => {
            payload.put_u8(KIND_RATING);
            payload.put_u64(r.rater.raw());
            payload.put_u64(r.ratee.raw());
            payload.put_u8(match r.value {
                RatingValue::Negative => 0,
                RatingValue::Neutral => 1,
                RatingValue::Positive => 2,
            });
            payload.put_u64(r.time.raw());
        }
        WalRecord::EpochClose { forced } => {
            payload.put_u8(KIND_EPOCH_CLOSE);
            payload.put_u8(u8::from(*forced));
        }
    }
    let payload = payload.into_bytes();
    let mut out = ByteWriter::with_capacity(payload.len() + 12);
    out.put_u32(payload.len() as u32);
    out.put_u64(fnv64(&payload));
    out.put_bytes(&payload);
    out.into_bytes()
}

fn decode_payload(payload: &[u8]) -> Result<(u64, WalRecord), CodecError> {
    let mut r = ByteReader::new(payload);
    let seq = r.get_u64()?;
    let kind = r.get_u8()?;
    let record = match kind {
        KIND_RATING => {
            let rater = NodeId(r.get_u64()?);
            let ratee = NodeId(r.get_u64()?);
            let value = match r.get_u8()? {
                0 => RatingValue::Negative,
                1 => RatingValue::Neutral,
                2 => RatingValue::Positive,
                t => return Err(CodecError::InvalidTag(t)),
            };
            let time = SimTime(r.get_u64()?);
            WalRecord::Rating(Rating::new(rater, ratee, value, time))
        }
        KIND_EPOCH_CLOSE => {
            let forced = match r.get_u8()? {
                0 => false,
                1 => true,
                t => return Err(CodecError::InvalidTag(t)),
            };
            WalRecord::EpochClose { forced }
        }
        t => return Err(CodecError::InvalidTag(t)),
    };
    if !r.is_exhausted() {
        return Err(CodecError::BadLength);
    }
    Ok((seq, record))
}

/// Scan raw WAL bytes (header included) and decode the valid prefix.
///
/// Never panics: any malformed region simply ends the scan. Records must
/// carry consecutive sequence numbers starting from the header's
/// `start_seq`; a gap or repeat is treated as corruption at that point.
pub fn replay_bytes(bytes: &[u8]) -> Result<WalReplay, WalError> {
    if bytes.len() < WAL_HEADER_LEN {
        return Err(WalError::BadHeader);
    }
    let mut hdr = ByteReader::new(&bytes[..WAL_HEADER_LEN]);
    let magic = hdr.get_bytes(4).map_err(|_| WalError::BadHeader)?;
    let version = hdr.get_u32().map_err(|_| WalError::BadHeader)?;
    if magic != WAL_MAGIC || version != WAL_VERSION {
        return Err(WalError::BadHeader);
    }
    let start_seq = hdr.get_u64().map_err(|_| WalError::BadHeader)?;

    let mut replay =
        WalReplay { valid_len: WAL_HEADER_LEN as u64, next_seq: start_seq, ..WalReplay::default() };
    let mut pos = WAL_HEADER_LEN;
    let mut expect_seq = start_seq;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        let mut frame = ByteReader::new(rest);
        let outcome = (|| -> Result<(usize, u64, WalRecord), CodecError> {
            let len = frame.get_u32()?;
            if len > MAX_PAYLOAD_LEN {
                return Err(CodecError::BadLength);
            }
            let checksum = frame.get_u64()?;
            let payload = frame.get_bytes(len as usize)?;
            if fnv64(payload) != checksum {
                return Err(CodecError::ChecksumMismatch);
            }
            let (seq, record) = decode_payload(payload)?;
            Ok((frame.pos(), seq, record))
        })();
        match outcome {
            Ok((consumed, seq, record)) if seq == expect_seq => {
                pos += consumed;
                replay.valid_len = pos as u64;
                replay.records.push((seq, record));
                expect_seq += 1;
            }
            Ok(_) => {
                replay.corruption = Some(CodecError::BadLength);
                break;
            }
            Err(e) => {
                replay.corruption = Some(e);
                break;
            }
        }
    }
    replay.truncated_bytes = bytes.len() as u64 - replay.valid_len;
    replay.next_seq = expect_seq;
    Ok(replay)
}

/// An append-only write-ahead log file.
///
/// Appends buffer in the OS page cache; [`Wal::sync`] makes them durable.
/// Callers schedule syncs via [`SyncPolicy`] (per record, every k records,
/// or group commit at epoch closes) and always sync before a checkpoint.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    len: u64,
    /// Byte span `[start, end)` of the most recent append, for crash-injection
    /// harnesses that tear the final record.
    last_record_span: (u64, u64),
}

impl Wal {
    /// Create a fresh WAL at `path` (truncating any existing file), with
    /// sequence numbers starting at `start_seq`.
    pub fn create(path: &Path, start_seq: u64) -> Result<Self, WalError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let mut hdr = ByteWriter::with_capacity(WAL_HEADER_LEN);
        hdr.put_bytes(&WAL_MAGIC);
        hdr.put_u32(WAL_VERSION);
        hdr.put_u64(start_seq);
        file.write_all(hdr.as_bytes())?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: start_seq,
            len: WAL_HEADER_LEN as u64,
            last_record_span: (WAL_HEADER_LEN as u64, WAL_HEADER_LEN as u64),
        })
    }

    /// Open an existing WAL, replaying it first. The file is truncated to its
    /// valid prefix (dropping any torn tail) and positioned for appending.
    /// Returns the writer plus the replay of the surviving records.
    pub fn open_existing(path: &Path) -> Result<(Self, WalReplay), WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let replay = replay_bytes(&bytes)?;
        if replay.truncated_bytes > 0 {
            file.set_len(replay.valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))?;
        let wal = Wal {
            file,
            path: path.to_path_buf(),
            next_seq: replay.next_seq,
            len: replay.valid_len,
            last_record_span: (replay.valid_len, replay.valid_len),
        };
        Ok((wal, replay))
    }

    /// Append one record, returning its sequence number. The bytes reach the
    /// OS immediately but are only crash-durable after [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let seq = self.next_seq;
        let bytes = encode_record(seq, record);
        self.file.write_all(&bytes)?;
        self.last_record_span = (self.len, self.len + bytes.len() as u64);
        self.len += bytes.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Append a batch of rating records as one buffered write, returning
    /// the sequence-number range `[start, end)` they occupy. Encoding is
    /// record-for-record identical to looping [`Wal::append`] — replay
    /// cannot tell the difference — but the whole batch costs a single
    /// `write(2)`, which is what makes the group-commit handoff of the
    /// pipelined ingest path cheap.
    pub fn append_ratings(&mut self, ratings: &[Rating]) -> Result<(u64, u64), WalError> {
        let start = self.next_seq;
        let mut buf = Vec::with_capacity(ratings.len() * 48);
        let mut last_start = self.len;
        for (k, &r) in ratings.iter().enumerate() {
            last_start = self.len + buf.len() as u64;
            buf.extend_from_slice(&encode_record(start + k as u64, &WalRecord::Rating(r)));
        }
        self.file.write_all(&buf)?;
        if !ratings.is_empty() {
            self.last_record_span = (last_start, self.len + buf.len() as u64);
        }
        self.len += buf.len() as u64;
        self.next_seq += ratings.len() as u64;
        Ok((start, self.next_seq))
    }

    /// Force appended records to stable storage (group fsync point).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Sequence number the next append will use.
    #[inline]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Current file length in bytes.
    #[inline]
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte span `[start, end)` of the most recently appended record.
    #[inline]
    pub fn last_record_span(&self) -> (u64, u64) {
        self.last_record_span
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "collusion-wal-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn rating(j: u64, i: u64, t: u64) -> Rating {
        Rating::positive(NodeId(j), NodeId(i), SimTime(t))
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let dir = scratch("roundtrip");
        let path = dir.join("test.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        let records = [
            WalRecord::Rating(rating(1, 2, 0)),
            WalRecord::Rating(Rating::negative(NodeId(3), NodeId(2), SimTime(1))),
            WalRecord::EpochClose { forced: false },
            WalRecord::Rating(Rating::neutral(NodeId(4), NodeId(5), SimTime(2))),
            WalRecord::EpochClose { forced: true },
        ];
        for (k, r) in records.iter().enumerate() {
            assert_eq!(wal.append(r).unwrap(), k as u64);
        }
        wal.sync().unwrap();
        let (wal2, replay) = Wal::open_existing(&path).unwrap();
        assert!(!replay.is_truncated());
        assert_eq!(replay.corruption, None);
        assert_eq!(replay.records.len(), records.len());
        for (k, (seq, rec)) in replay.records.iter().enumerate() {
            assert_eq!(*seq, k as u64);
            assert_eq!(rec, &records[k]);
        }
        assert_eq!(wal2.next_seq(), records.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = scratch("torn");
        let path = dir.join("torn.wal");
        let mut wal = Wal::create(&path, 10).unwrap();
        wal.append(&WalRecord::Rating(rating(1, 2, 0))).unwrap();
        wal.append(&WalRecord::Rating(rating(3, 2, 1))).unwrap();
        wal.sync().unwrap();
        let (start, end) = wal.last_record_span();
        drop(wal);
        // tear the final record in half
        let tear_at = start + (end - start) / 2;
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(tear_at).unwrap();
        drop(f);

        let (mut wal, replay) = Wal::open_existing(&path).unwrap();
        assert!(replay.is_truncated());
        assert!(replay.corruption.is_some());
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].0, 10);
        assert_eq!(replay.next_seq, 11);
        // appending after truncation continues the sequence cleanly
        assert_eq!(wal.append(&WalRecord::EpochClose { forced: false }).unwrap(), 11);
        wal.sync().unwrap();
        let (_, replay) = Wal::open_existing(&path).unwrap();
        assert!(!replay.is_truncated());
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_in_payload_stops_replay_at_checksum() {
        let dir = scratch("flip");
        let path = dir.join("flip.wal");
        let mut wal = Wal::create(&path, 0).unwrap();
        wal.append(&WalRecord::Rating(rating(1, 2, 0))).unwrap();
        wal.append(&WalRecord::Rating(rating(3, 2, 1))).unwrap();
        wal.sync().unwrap();
        let (start, _) = wal.last_record_span();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // flip a bit inside the second record's payload
        let idx = start as usize + 14;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.corruption, Some(CodecError::ChecksumMismatch));
        assert!(replay.is_truncated());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_appends_replay_identically_to_looped_appends() {
        let dir = scratch("batch");
        let looped_path = dir.join("looped.wal");
        let batched_path = dir.join("batched.wal");
        let ratings: Vec<Rating> = (0..37).map(|k| rating(k % 5 + 1, k % 7 + 10, k)).collect();
        let mut looped = Wal::create(&looped_path, 3).unwrap();
        for &r in &ratings {
            looped.append(&WalRecord::Rating(r)).unwrap();
        }
        looped.sync().unwrap();
        let mut batched = Wal::create(&batched_path, 3).unwrap();
        let (start, end) = batched.append_ratings(&ratings).unwrap();
        assert_eq!((start, end), (3, 3 + ratings.len() as u64));
        assert_eq!(batched.last_record_span(), looped.last_record_span());
        batched.sync().unwrap();
        assert_eq!(
            std::fs::read(&looped_path).unwrap(),
            std::fs::read(&batched_path).unwrap(),
            "batched encoding must be byte-identical"
        );
        // empty batch: no-op, sequence unchanged
        assert_eq!(batched.append_ratings(&[]).unwrap(), (end, end));
        assert_eq!(batched.next_seq(), end);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policy_due_semantics() {
        assert!(SyncPolicy::PerRecord.due(1));
        assert!(!SyncPolicy::PerRecord.due(0));
        assert!(!SyncPolicy::EveryK(64).due(63));
        assert!(SyncPolicy::EveryK(64).due(64));
        assert!(SyncPolicy::EveryK(64).due(200));
        assert!(SyncPolicy::EveryK(0).due(1), "k=0 behaves as k=1");
        assert!(!SyncPolicy::Group.due(u64::MAX));
        assert_eq!(SyncPolicy::default(), SyncPolicy::EveryK(64));
    }

    #[test]
    fn bad_header_is_an_error_not_a_panic() {
        assert!(matches!(replay_bytes(b""), Err(WalError::BadHeader)));
        assert!(matches!(replay_bytes(b"CWALxx"), Err(WalError::BadHeader)));
        let mut bogus = Vec::from(*b"NOPE");
        bogus.extend_from_slice(&[0u8; 12]);
        assert!(matches!(replay_bytes(&bogus), Err(WalError::BadHeader)));
    }

    #[test]
    fn sequence_gap_treated_as_corruption() {
        let mut bytes = {
            let mut hdr = ByteWriter::new();
            hdr.put_bytes(&WAL_MAGIC);
            hdr.put_u32(WAL_VERSION);
            hdr.put_u64(0);
            hdr.into_bytes()
        };
        bytes.extend_from_slice(&encode_record(0, &WalRecord::EpochClose { forced: false }));
        // next record skips seq 1
        bytes.extend_from_slice(&encode_record(2, &WalRecord::EpochClose { forced: false }));
        let replay = replay_bytes(&bytes).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.is_truncated());
        assert_eq!(replay.next_seq, 1);
    }
}
