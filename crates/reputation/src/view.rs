//! [`SnapshotView`] — the read-only probe interface detection kernels run
//! against.
//!
//! The detectors in `collusion-core` only ever *read* a frozen rating
//! matrix: rows, reverse probes, per-ratee totals and the optional frequent
//! aggregates. Abstracting those probes behind a trait lets the same kernel
//! code run over the monolithic [`crate::snapshot::DetectionSnapshot`] and
//! the sharded [`crate::sharded::ShardedSnapshot`] without duplication —
//! and guarantees the two paths share one definition of every quantity, so
//! "bit-identical suspect sets" is a property of the data, not of parallel
//! reimplementations.
//!
//! The `Sync` supertrait lets rayon kernels walk rows of any view from many
//! threads; views are frozen during a detection pass, so no locks are
//! needed.

use crate::history::{NodeTotals, PairCounters};
use crate::id::NodeId;
use crate::snapshot::DetectionSnapshot;

/// Read-only probe interface over a frozen CSR rating matrix.
///
/// All methods take dense `u32` indices (see [`SnapshotView::index`]);
/// interning is ascending by [`NodeId`], so ascending index order is
/// ascending id order for every implementor.
pub trait SnapshotView: Sync {
    /// Number of interned nodes.
    fn n(&self) -> usize;

    /// The interned node ids, ascending (dense index → id).
    fn nodes(&self) -> &[NodeId];

    /// The node id of dense index `idx`.
    fn node_id(&self, idx: u32) -> NodeId;

    /// The dense index of `id`, if interned.
    fn index(&self, id: NodeId) -> Option<u32>;

    /// Number of stored (rater, ratee) cells, overlays resolved.
    fn nnz(&self) -> usize;

    /// The forward row of ratee `idx`: rater indices (ascending) and their
    /// counters.
    fn row(&self, idx: u32) -> (&[u32], &[PairCounters]);

    /// Counters for the ordered pair (rater → ratee), zero if absent.
    fn pair(&self, rater: u32, ratee: u32) -> PairCounters;

    /// Aggregate counters for ratee `idx` (`N_i` and the split).
    fn totals_of(&self, idx: u32) -> NodeTotals;

    /// Signed reputation `R_i = #pos − #neg` of ratee `idx`.
    fn signed(&self, idx: u32) -> i64 {
        self.totals_of(idx).signed()
    }

    /// The precomputed frequent aggregate for ratee `idx`, if aggregates
    /// were computed for exactly this `t_n`.
    fn frequent_agg(&self, t_n: u64, idx: u32) -> Option<(u64, i64)>;

    /// Compute the frequent aggregate for one row directly: `(count,
    /// signed sum)` over raters with `N(j,i) ≥ t_n`.
    fn row_freq(&self, idx: u32, t_n: u64) -> (u64, i64) {
        let (_, cells) = self.row(idx);
        let mut count = 0u64;
        let mut signed = 0i64;
        for c in cells {
            if c.total >= t_n {
                count += c.total;
                signed += c.signed();
            }
        }
        (count, signed)
    }
}

impl SnapshotView for DetectionSnapshot {
    #[inline]
    fn n(&self) -> usize {
        DetectionSnapshot::n(self)
    }

    #[inline]
    fn nodes(&self) -> &[NodeId] {
        DetectionSnapshot::nodes(self)
    }

    #[inline]
    fn node_id(&self, idx: u32) -> NodeId {
        DetectionSnapshot::node_id(self, idx)
    }

    #[inline]
    fn index(&self, id: NodeId) -> Option<u32> {
        DetectionSnapshot::index(self, id)
    }

    #[inline]
    fn nnz(&self) -> usize {
        DetectionSnapshot::nnz(self)
    }

    #[inline]
    fn row(&self, idx: u32) -> (&[u32], &[PairCounters]) {
        DetectionSnapshot::row(self, idx)
    }

    #[inline]
    fn pair(&self, rater: u32, ratee: u32) -> PairCounters {
        DetectionSnapshot::pair(self, rater, ratee)
    }

    #[inline]
    fn totals_of(&self, idx: u32) -> NodeTotals {
        DetectionSnapshot::totals_of(self, idx)
    }

    #[inline]
    fn signed(&self, idx: u32) -> i64 {
        DetectionSnapshot::signed(self, idx)
    }

    #[inline]
    fn frequent_agg(&self, t_n: u64, idx: u32) -> Option<(u64, i64)> {
        DetectionSnapshot::frequent_agg(self, t_n, idx)
    }

    #[inline]
    fn row_freq(&self, idx: u32, t_n: u64) -> (u64, i64) {
        DetectionSnapshot::row_freq(self, idx, t_n)
    }
}
