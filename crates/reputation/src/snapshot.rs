//! [`DetectionSnapshot`] — an immutable CSR view of an
//! [`InteractionHistory`] for detection passes.
//!
//! The detectors in `collusion-core` probe the rating matrix millions of
//! times per pass. Served from `InteractionHistory`'s hash maps, every probe
//! pays a SipHash of a `(NodeId, NodeId)` tuple; served from this snapshot,
//! a probe is a binary search over a short, contiguous, cache-resident row.
//! The snapshot is built once per detection pass (or refreshed
//! incrementally, see below) and is *frozen*: detectors only read it, so
//! parallel row iteration needs no locks.
//!
//! Layout:
//!
//! * node ids are interned to dense `u32` indices (`nodes[idx] ↔ idx`),
//!   ascending by id, covering the caller's node list *plus* every rater
//!   and ratee in the history (detector row scans include raters outside
//!   the manager's view);
//! * **forward rows** (compressed sparse row): for each ratee `i`, the
//!   rater indices ascending with their packed [`PairCounters`] — the
//!   matrix row the Basic detector scans and the Optimized detector walks;
//! * **reverse rows**: for each rater `j`, the `(ratee, counters)` entries
//!   ascending by ratee — [`DetectionSnapshot::pair`] probes these so the
//!   mutual check binary-searches the rater's (typically short) out-row
//!   instead of the ratee's (possibly huge) in-row, and never hashes;
//! * **per-ratee totals**: `N_i` and the signed reputation `R_i` used by
//!   Formula (2), precomputed per row;
//! * optional **frequent aggregates**: per-ratee `(count, signed sum)` over
//!   raters with `N(j,i) ≥ T_N`, precomputed for the extended detection
//!   policy (`community_excludes_frequent`).
//!
//! # Incremental refresh
//!
//! [`InteractionHistory`] tracks the ratees whose rows changed since the
//! last [`InteractionHistory::take_dirty`]. [`DetectionSnapshot::refresh`]
//! rebuilds only those rows (and their reverse-index entries) as overlay
//! patches — O(changed rows), not O(nnz). When either patch overlay grows
//! past a quarter of the rows — the *forward* overlay (one entry per dirty
//! ratee) or the *reverse* overlay (one entry per rater of a dirty ratee,
//! which grows much faster) — or a previously unseen node appears, the
//! refresh compacts into a full rebuild. Either way the refreshed snapshot
//! is logically identical to a fresh build ([`PartialEq`] compares the
//! resolved rows, not the representation).

use crate::history::{InteractionHistory, NodeTotals, PairCounters};
use crate::id::NodeId;
use rayon::prelude::*;
use std::collections::HashMap;

/// Overlay for one rebuilt forward row.
#[derive(Clone, Debug)]
struct RowPatch {
    cols: Vec<u32>,
    cells: Vec<PairCounters>,
}

/// Per-ratee aggregates over *frequent* raters (`N(j,i) ≥ T_N`), keyed by
/// the `T_N` they were computed for.
#[derive(Clone, Debug)]
struct FrequentAggregates {
    t_n: u64,
    /// Per row: (total ratings from frequent raters, their signed sum).
    agg: Vec<(u64, i64)>,
}

/// How a [`DetectionSnapshot::refresh`] was carried out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshOutcome {
    /// No dirty rows — the snapshot was already current.
    Unchanged,
    /// Only the dirty rows were rebuilt (count given).
    Patched(usize),
    /// The whole snapshot was rebuilt (new nodes appeared, or the patch
    /// overlay had grown past the compaction threshold).
    Rebuilt,
}

/// Frozen CSR view of an interaction history for one detection pass.
#[derive(Clone, Debug)]
pub struct DetectionSnapshot {
    /// Interned node ids, ascending; `nodes[idx]` is the id of dense `idx`.
    nodes: Vec<NodeId>,
    /// id → dense index.
    index: HashMap<NodeId, u32>,
    /// Forward CSR offsets, `n + 1` entries.
    row_offsets: Vec<u32>,
    /// Rater indices per ratee row, ascending within each row.
    row_cols: Vec<u32>,
    /// Counters parallel to `row_cols`.
    row_cells: Vec<PairCounters>,
    /// Reverse CSR offsets, `n + 1` entries.
    rev_offsets: Vec<u32>,
    /// `(ratee, counters)` per rater row, ascending by ratee.
    rev_entries: Vec<(u32, PairCounters)>,
    /// Per-ratee totals (`N_i`, positives, negatives).
    totals: Vec<NodeTotals>,
    /// Dirty-row overlays from incremental refreshes.
    row_patch: Vec<Option<RowPatch>>,
    /// Reverse-row overlays from incremental refreshes.
    rev_patch: Vec<Option<Vec<(u32, PairCounters)>>>,
    /// Number of forward rows currently overlaid.
    patched_rows: usize,
    /// Number of reverse rows currently overlaid.
    patched_rev_rows: usize,
    /// Cached cell count with overlays resolved, so `nnz()` is O(1) even on
    /// a patched snapshot.
    nnz: usize,
    /// Optional precomputed frequent-rater aggregates.
    freq: Option<FrequentAggregates>,
}

impl DetectionSnapshot {
    /// Build a snapshot of `history`. The interned set is the union of
    /// `nodes` and every rater/ratee present in the history, so detector
    /// row scans (which include raters outside the manager's view) never
    /// miss an id.
    pub fn build(history: &InteractionHistory, nodes: &[NodeId]) -> Self {
        Self::build_inner(history, nodes, None)
    }

    /// [`DetectionSnapshot::build`] plus an eager
    /// [`DetectionSnapshot::precompute_frequent`] pass for `t_n`.
    pub fn build_with_frequent(history: &InteractionHistory, nodes: &[NodeId], t_n: u64) -> Self {
        Self::build_inner(history, nodes, Some(t_n))
    }

    fn build_inner(history: &InteractionHistory, base: &[NodeId], freq_t_n: Option<u64>) -> Self {
        let mut nodes: Vec<NodeId> = base.to_vec();
        for (rater, ratee, _) in history.iter_pairs() {
            nodes.push(rater);
            nodes.push(ratee);
        }
        nodes.sort_unstable();
        nodes.dedup();
        assert!(nodes.len() <= u32::MAX as usize, "too many nodes for u32 interning");
        let n = nodes.len();
        let index: HashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();

        // forward rows: gather per ratee, then sort each row by rater index
        let mut rows: Vec<Vec<(u32, PairCounters)>> = Vec::with_capacity(n);
        for &id in &nodes {
            let raters = history.raters_of(id);
            let mut row = Vec::with_capacity(raters.len());
            for &r in raters {
                row.push((index[&r], history.pair(r, id)));
            }
            rows.push(row);
        }
        rows.par_iter_mut().for_each(|row| row.sort_unstable_by_key(|e| e.0));

        let nnz: usize = rows.iter().map(Vec::len).sum();
        assert!(nnz <= u32::MAX as usize, "too many rating pairs for u32 offsets");
        let mut row_offsets = Vec::with_capacity(n + 1);
        row_offsets.push(0u32);
        let mut row_cols = Vec::with_capacity(nnz);
        let mut row_cells = Vec::with_capacity(nnz);
        for row in &rows {
            for &(c, cell) in row {
                row_cols.push(c);
                row_cells.push(cell);
            }
            row_offsets.push(row_cols.len() as u32);
        }

        // reverse rows: counting sort over the forward structure. Walking
        // ratees in ascending order leaves every reverse row sorted by
        // ratee without an explicit sort.
        let mut rev_len = vec![0u32; n];
        for &c in &row_cols {
            rev_len[c as usize] += 1;
        }
        let mut rev_offsets = Vec::with_capacity(n + 1);
        rev_offsets.push(0u32);
        for i in 0..n {
            rev_offsets.push(rev_offsets[i] + rev_len[i]);
        }
        let mut rev_entries: Vec<(u32, PairCounters)> = vec![(0, PairCounters::default()); nnz];
        let mut cursor: Vec<u32> = rev_offsets[..n].to_vec();
        for i in 0..n {
            let (s, e) = (row_offsets[i] as usize, row_offsets[i + 1] as usize);
            for k in s..e {
                let j = row_cols[k] as usize;
                rev_entries[cursor[j] as usize] = (i as u32, row_cells[k]);
                cursor[j] += 1;
            }
        }

        let totals: Vec<NodeTotals> = nodes.iter().map(|&id| history.totals(id)).collect();
        let mut snap = DetectionSnapshot {
            nodes,
            index,
            row_offsets,
            row_cols,
            row_cells,
            rev_offsets,
            rev_entries,
            totals,
            row_patch: (0..n).map(|_| None).collect(),
            rev_patch: (0..n).map(|_| None).collect(),
            patched_rows: 0,
            patched_rev_rows: 0,
            nnz,
            freq: None,
        };
        if let Some(t_n) = freq_t_n {
            snap.precompute_frequent(t_n);
        }
        snap
    }

    // ----- Shape ------------------------------------------------------------

    /// Number of interned nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// The interned node ids, ascending (dense index → id).
    #[inline]
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The node id of dense index `idx`.
    #[inline]
    pub fn node_id(&self, idx: u32) -> NodeId {
        self.nodes[idx as usize]
    }

    /// The dense index of `id`, if interned.
    #[inline]
    pub fn index(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    /// Number of stored (rater, ratee) cells, patches resolved. O(1): the
    /// count is maintained across incremental refreshes, so detectors can
    /// pre-size scratch buffers from it on every pass.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of forward rows currently served from refresh overlays.
    #[inline]
    pub fn patched_rows(&self) -> usize {
        self.patched_rows
    }

    /// Number of reverse rows currently served from refresh overlays.
    #[inline]
    pub fn patched_rev_rows(&self) -> usize {
        self.patched_rev_rows
    }

    // ----- Probes -----------------------------------------------------------

    /// The forward row of ratee `idx`: rater indices (ascending) and their
    /// counters. This is the matrix row the Basic detector scans; its
    /// length equals `InteractionHistory::raters_of(id).len()`.
    #[inline]
    pub fn row(&self, idx: u32) -> (&[u32], &[PairCounters]) {
        let i = idx as usize;
        if let Some(p) = &self.row_patch[i] {
            return (&p.cols, &p.cells);
        }
        let (s, e) = (self.row_offsets[i] as usize, self.row_offsets[i + 1] as usize);
        (&self.row_cols[s..e], &self.row_cells[s..e])
    }

    /// The reverse row of rater `idx`: `(ratee, counters)` ascending by
    /// ratee — everyone `idx` has rated.
    #[inline]
    pub fn rev_row(&self, idx: u32) -> &[(u32, PairCounters)] {
        let i = idx as usize;
        if let Some(p) = &self.rev_patch[i] {
            return p;
        }
        let (s, e) = (self.rev_offsets[i] as usize, self.rev_offsets[i + 1] as usize);
        &self.rev_entries[s..e]
    }

    /// Counters for the ordered pair (rater → ratee), zero if absent —
    /// [`InteractionHistory::pair`] without the hash. Probes the rater's
    /// reverse row (short for typical raters) by binary search.
    #[inline]
    pub fn pair(&self, rater: u32, ratee: u32) -> PairCounters {
        let row = self.rev_row(rater);
        match row.binary_search_by_key(&ratee, |e| e.0) {
            Ok(pos) => row[pos].1,
            Err(_) => PairCounters::default(),
        }
    }

    /// Aggregate counters for ratee `idx` (`N_i` and the positive/negative
    /// split).
    #[inline]
    pub fn totals_of(&self, idx: u32) -> NodeTotals {
        self.totals[idx as usize]
    }

    /// Signed reputation `R_i = #pos − #neg` of ratee `idx`.
    #[inline]
    pub fn signed(&self, idx: u32) -> i64 {
        self.totals[idx as usize].signed()
    }

    // ----- Frequent aggregates ----------------------------------------------

    /// Precompute per-ratee `(count, signed sum)` over frequent raters
    /// (`N(j,i) ≥ t_n`) for the extended detection policy. Replaces any
    /// aggregates computed for a different `t_n`.
    pub fn precompute_frequent(&mut self, t_n: u64) {
        let agg: Vec<(u64, i64)> =
            (0..self.n() as u32).into_par_iter().map(|i| self.row_freq(i, t_n)).collect();
        self.freq = Some(FrequentAggregates { t_n, agg });
    }

    /// The precomputed frequent aggregate for ratee `idx`, if aggregates
    /// were computed for exactly this `t_n`.
    #[inline]
    pub fn frequent_agg(&self, t_n: u64, idx: u32) -> Option<(u64, i64)> {
        self.freq.as_ref().filter(|f| f.t_n == t_n).map(|f| f.agg[idx as usize])
    }

    /// Compute the frequent aggregate for one row directly.
    pub fn row_freq(&self, idx: u32, t_n: u64) -> (u64, i64) {
        let (_, cells) = self.row(idx);
        let mut count = 0u64;
        let mut signed = 0i64;
        for c in cells {
            if c.total >= t_n {
                count += c.total;
                signed += c.signed();
            }
        }
        (count, signed)
    }

    // ----- Incremental refresh ----------------------------------------------

    /// Bring the snapshot up to date with `history` by rebuilding only the
    /// rows of the `dirty` ratees (typically
    /// [`InteractionHistory::take_dirty`]). Falls back to a full rebuild
    /// when a dirty ratee or one of its raters is not interned yet, when
    /// more than a quarter of all forward rows would end up patched, or
    /// when the *reverse* overlay accumulated by earlier refreshes already
    /// covers more than a quarter of the rows (it grows by one row per
    /// rater of a dirty ratee, so without the bound it would grow without
    /// limit and every reverse probe would chase scattered heap rows; the
    /// check runs up front so one legitimately large refresh still patches,
    /// leaving the overlay bounded by n/4 plus that refresh's raters).
    ///
    /// The result is logically identical to `DetectionSnapshot::build`
    /// against the current history (asserted by the crate's property
    /// tests).
    pub fn refresh(&mut self, history: &InteractionHistory, dirty: &[NodeId]) -> RefreshOutcome {
        if dirty.is_empty() {
            return RefreshOutcome::Unchanged;
        }
        let mut need_rebuild = false;
        let mut fresh = 0usize;
        'scan: for &id in dirty {
            let Some(idx) = self.index(id) else {
                need_rebuild = true;
                break;
            };
            if self.row_patch[idx as usize].is_none() {
                fresh += 1;
            }
            for &r in history.raters_of(id) {
                if !self.index.contains_key(&r) {
                    need_rebuild = true;
                    break 'scan;
                }
            }
        }
        if need_rebuild
            || 4 * (self.patched_rows + fresh) > self.n()
            || 4 * self.patched_rev_rows > self.n()
        {
            let t_n = self.freq.as_ref().map(|f| f.t_n);
            let nodes = std::mem::take(&mut self.nodes);
            *self = Self::build_inner(history, &nodes, t_n);
            return RefreshOutcome::Rebuilt;
        }
        for &id in dirty {
            let i = self.index[&id];
            let old_cols: Vec<u32> = self.row(i).0.to_vec();
            let mut new_row: Vec<(u32, PairCounters)> = history
                .raters_of(id)
                .iter()
                .map(|&r| (self.index[&r], history.pair(r, id)))
                .collect();
            new_row.sort_unstable_by_key(|e| e.0);
            // maintain the reverse index: upsert current cells, drop raters
            // that disappeared (split_off_ratee)
            for &(j, cell) in &new_row {
                self.rev_upsert(j, i, cell);
            }
            let new_cols: Vec<u32> = new_row.iter().map(|e| e.0).collect();
            for &j in &old_cols {
                if new_cols.binary_search(&j).is_err() {
                    self.rev_remove(j, i);
                }
            }
            let ii = i as usize;
            if self.row_patch[ii].is_none() {
                self.patched_rows += 1;
            }
            self.nnz = self.nnz + new_cols.len() - old_cols.len();
            self.row_patch[ii] =
                Some(RowPatch { cols: new_cols, cells: new_row.iter().map(|e| e.1).collect() });
            self.totals[ii] = history.totals(id);
            if let Some(t_n) = self.freq.as_ref().map(|f| f.t_n) {
                let agg = self.row_freq(i, t_n);
                self.freq.as_mut().expect("checked above").agg[ii] = agg;
            }
        }
        RefreshOutcome::Patched(dirty.len())
    }

    fn rev_row_mut(&mut self, rater: u32) -> &mut Vec<(u32, PairCounters)> {
        let j = rater as usize;
        if self.rev_patch[j].is_none() {
            let (s, e) = (self.rev_offsets[j] as usize, self.rev_offsets[j + 1] as usize);
            self.rev_patch[j] = Some(self.rev_entries[s..e].to_vec());
            self.patched_rev_rows += 1;
        }
        self.rev_patch[j].as_mut().expect("just filled")
    }

    fn rev_upsert(&mut self, rater: u32, ratee: u32, cell: PairCounters) {
        let row = self.rev_row_mut(rater);
        match row.binary_search_by_key(&ratee, |e| e.0) {
            Ok(pos) => row[pos].1 = cell,
            Err(pos) => row.insert(pos, (ratee, cell)),
        }
    }

    fn rev_remove(&mut self, rater: u32, ratee: u32) {
        let row = self.rev_row_mut(rater);
        if let Ok(pos) = row.binary_search_by_key(&ratee, |e| e.0) {
            row.remove(pos);
        }
    }
}

/// Logical equality of the frozen view: same interned nodes, same totals,
/// same resolved forward rows — regardless of how much of either snapshot
/// lives in refresh overlays. The reverse index and frequent aggregates are
/// derived data and not compared.
impl PartialEq for DetectionSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.totals == other.totals
            && (0..self.n() as u32).all(|i| self.row(i) == other.row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::SimTime;
    use crate::rating::{Rating, RatingValue};

    fn hist(ratings: &[(u64, u64, i8)]) -> InteractionHistory {
        let mut h = InteractionHistory::new();
        for (t, &(j, i, v)) in ratings.iter().enumerate() {
            let value = match v {
                1 => RatingValue::Positive,
                0 => RatingValue::Neutral,
                _ => RatingValue::Negative,
            };
            h.record(Rating::new(NodeId(j), NodeId(i), value, SimTime(t as u64)));
        }
        h
    }

    fn pseudo_history(seed: u64, n: u64, len: u64) -> InteractionHistory {
        // deterministic splitmix-style stream, no RNG dependency needed
        let mut h = InteractionHistory::new();
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for t in 0..len {
            let a = next() % n;
            let mut b = next() % n;
            if a == b {
                b = (b + 1) % n;
            }
            let v = match next() % 3 {
                0 => RatingValue::Negative,
                1 => RatingValue::Neutral,
                _ => RatingValue::Positive,
            };
            h.record(Rating::new(NodeId(a), NodeId(b), v, SimTime(t)));
        }
        h
    }

    /// Every probe of the snapshot equals the corresponding history call.
    fn assert_matches_history(snap: &DetectionSnapshot, h: &InteractionHistory) {
        for &ratee in snap.nodes() {
            let i = snap.index(ratee).unwrap();
            assert_eq!(snap.totals_of(i), h.totals(ratee));
            assert_eq!(snap.signed(i), h.signed_reputation(ratee));
            let (cols, cells) = snap.row(i);
            assert_eq!(cols.len(), h.raters_of(ratee).len(), "row len of {ratee}");
            let mut prev = None;
            for (&c, &cell) in cols.iter().zip(cells) {
                assert!(Some(c) > prev, "row of {ratee} not strictly ascending");
                prev = Some(c);
                let rater = snap.node_id(c);
                assert_eq!(cell, h.pair(rater, ratee), "cell {rater}->{ratee}");
                // the reverse probe sees the same counters
                assert_eq!(snap.pair(c, i), cell, "rev probe {rater}->{ratee}");
            }
            // reverse rows agree with the forward structure
            for &(r, cell) in snap.rev_row(i) {
                assert_eq!(cell, h.pair(ratee, snap.node_id(r)));
            }
        }
    }

    #[test]
    fn build_matches_history_probes() {
        let h = pseudo_history(7, 12, 400);
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let snap = DetectionSnapshot::build(&h, &nodes);
        assert_eq!(snap.n(), 12);
        assert_matches_history(&snap, &h);
    }

    #[test]
    fn interning_covers_raters_outside_the_view() {
        // rater 99 is not in the caller's node list but rates node 1
        let h = hist(&[(99, 1, 1), (2, 1, -1)]);
        let snap = DetectionSnapshot::build(&h, &[NodeId(1), NodeId(2)]);
        assert_eq!(snap.n(), 3);
        let i1 = snap.index(NodeId(1)).unwrap();
        assert_eq!(snap.row(i1).0.len(), 2);
        let i99 = snap.index(NodeId(99)).unwrap();
        assert_eq!(snap.pair(i99, i1).positive, 1);
    }

    #[test]
    fn absent_pair_probe_is_zero() {
        let h = hist(&[(1, 2, 1)]);
        let snap = DetectionSnapshot::build(&h, &[NodeId(1), NodeId(2)]);
        let (i1, i2) = (snap.index(NodeId(1)).unwrap(), snap.index(NodeId(2)).unwrap());
        assert_eq!(snap.pair(i2, i1), PairCounters::default());
        assert_eq!(snap.pair(i1, i2).total, 1);
    }

    #[test]
    fn refresh_patches_dirty_rows_to_match_fresh_build() {
        let mut h = pseudo_history(21, 16, 300);
        let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        h.take_dirty();
        // touch two ratees
        h.record(Rating::positive(NodeId(3), NodeId(5), SimTime(1000)));
        h.record(Rating::negative(NodeId(5), NodeId(3), SimTime(1001)));
        let dirty = h.take_dirty();
        assert_eq!(dirty, vec![NodeId(3), NodeId(5)]);
        let outcome = snap.refresh(&h, &dirty);
        assert_eq!(outcome, RefreshOutcome::Patched(2));
        assert!(snap.patched_rows() <= 2);
        assert_matches_history(&snap, &h);
        assert_eq!(snap, DetectionSnapshot::build(&h, &nodes));
    }

    #[test]
    fn refresh_with_new_node_rebuilds() {
        let mut h = pseudo_history(3, 8, 100);
        let nodes: Vec<NodeId> = (0..8).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        h.take_dirty();
        h.record(Rating::positive(NodeId(200), NodeId(1), SimTime(500)));
        let dirty = h.take_dirty();
        let outcome = snap.refresh(&h, &dirty);
        assert_eq!(outcome, RefreshOutcome::Rebuilt);
        assert!(snap.index(NodeId(200)).is_some());
        assert_matches_history(&snap, &h);
    }

    #[test]
    fn refresh_compacts_when_most_rows_dirty() {
        let mut h = pseudo_history(9, 10, 200);
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        h.take_dirty();
        for t in 0..40 {
            let a = t % 10;
            let b = (t + 1) % 10;
            h.record(Rating::positive(NodeId(a), NodeId(b), SimTime(2000 + t)));
        }
        let dirty = h.take_dirty();
        let outcome = snap.refresh(&h, &dirty);
        assert_eq!(outcome, RefreshOutcome::Rebuilt);
        assert_eq!(snap.patched_rows(), 0);
        assert_matches_history(&snap, &h);
    }

    #[test]
    fn refresh_handles_split_off_rows() {
        let mut h = pseudo_history(11, 12, 300);
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        h.take_dirty();
        let _slice = h.split_off_ratee(NodeId(4));
        let dirty = h.take_dirty();
        assert!(dirty.contains(&NodeId(4)));
        snap.refresh(&h, &dirty);
        let i4 = snap.index(NodeId(4)).unwrap();
        assert!(snap.row(i4).0.is_empty());
        assert_eq!(snap.totals_of(i4), NodeTotals::default());
        assert_matches_history(&snap, &h);
    }

    #[test]
    fn frequent_aggregates_match_direct_computation() {
        let mut h = pseudo_history(5, 10, 500);
        for t in 0..25 {
            h.record(Rating::positive(NodeId(1), NodeId(2), SimTime(5000 + t)));
        }
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let snap = DetectionSnapshot::build_with_frequent(&h, &nodes, 20);
        for i in 0..snap.n() as u32 {
            assert_eq!(snap.frequent_agg(20, i), Some(snap.row_freq(i, 20)));
        }
        // wrong t_n yields no cached aggregate
        assert_eq!(snap.frequent_agg(19, 0), None);
        // the boosted pair is counted
        let i2 = snap.index(NodeId(2)).unwrap();
        let (count, _) = snap.row_freq(i2, 20);
        assert!(count >= 25);
    }

    #[test]
    fn frequent_aggregates_survive_refresh() {
        let mut h = pseudo_history(13, 10, 300);
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build_with_frequent(&h, &nodes, 20);
        h.take_dirty();
        for t in 0..30 {
            h.record(Rating::positive(NodeId(7), NodeId(8), SimTime(9000 + t)));
        }
        let dirty = h.take_dirty();
        snap.refresh(&h, &dirty);
        for i in 0..snap.n() as u32 {
            assert_eq!(snap.frequent_agg(20, i), Some(snap.row_freq(i, 20)));
        }
    }

    #[test]
    fn equality_is_representation_independent() {
        let mut h = pseudo_history(17, 14, 400);
        let nodes: Vec<NodeId> = (0..14).map(NodeId).collect();
        let fresh_base = DetectionSnapshot::build(&h, &nodes);
        let mut patched = fresh_base.clone();
        h.take_dirty();
        h.record(Rating::negative(NodeId(2), NodeId(9), SimTime(7777)));
        let dirty = h.take_dirty();
        patched.refresh(&h, &dirty);
        let fresh = DetectionSnapshot::build(&h, &nodes);
        assert_eq!(patched, fresh);
        assert_ne!(patched, fresh_base);
    }

    #[test]
    fn nnz_stays_exact_across_refreshes() {
        let mut h = pseudo_history(23, 12, 250);
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        h.take_dirty();
        for round in 0..6u64 {
            // a brand-new cell and a repeat rating on an existing cell
            h.record(Rating::positive(NodeId(round % 12), NodeId((round + 3) % 12), SimTime(9000)));
            let dirty = h.take_dirty();
            snap.refresh(&h, &dirty);
            let resolved: usize = (0..snap.n() as u32).map(|i| snap.row(i).0.len()).sum();
            assert_eq!(snap.nnz(), resolved, "cached nnz diverged at round {round}");
            assert_eq!(snap.nnz(), DetectionSnapshot::build(&h, &nodes).nnz());
        }
    }

    #[test]
    fn reverse_overlay_growth_triggers_compaction() {
        // One ratee stays dirty forever while a rotating rater touches it:
        // the forward overlay never exceeds one row, but every refresh
        // overlays another *reverse* row. The reverse-overlay threshold must
        // force a compaction; without it the overlay grows without bound.
        let mut h = InteractionHistory::new();
        let n = 41u64;
        for k in 1..n {
            h.record(Rating::positive(NodeId(k), NodeId(0), SimTime(k)));
        }
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        h.take_dirty();
        let mut rebuilt = false;
        for k in 1..n {
            h.record(Rating::negative(NodeId(k), NodeId(0), SimTime(1000 + k)));
            let dirty = h.take_dirty();
            if snap.refresh(&h, &dirty) == RefreshOutcome::Rebuilt {
                rebuilt = true;
            }
            assert!(
                4 * snap.patched_rev_rows() <= snap.n() + 4 * snap.row(0).0.len(),
                "reverse overlay unbounded: {} rows at step {k}",
                snap.patched_rev_rows()
            );
            assert!(snap.patched_rows() <= 1);
        }
        assert!(rebuilt, "reverse-overlay growth never forced a compaction");
        assert_matches_history(&snap, &h);
    }

    #[test]
    fn empty_history_snapshot() {
        let h = InteractionHistory::new();
        let snap = DetectionSnapshot::build(&h, &[NodeId(1), NodeId(2)]);
        assert_eq!(snap.n(), 2);
        assert_eq!(snap.nnz(), 0);
        let i1 = snap.index(NodeId(1)).unwrap();
        assert!(snap.row(i1).0.is_empty());
        assert_eq!(snap.signed(i1), 0);
    }
}
