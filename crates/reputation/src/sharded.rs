//! [`ShardedSnapshot`] — the rating matrix split by ratee-id range into
//! independent CSR shards, for 100k-node scale.
//!
//! The monolithic [`DetectionSnapshot`](crate::snapshot::DetectionSnapshot)
//! keeps one CSR arena for the whole matrix: any refresh that crosses the
//! patch-overlay threshold rebuilds *everything*, and a rebuild is a single
//! serial-memory-bound pass. At 100k nodes / millions of cells that is the
//! dominant cost of an incremental pipeline. This structure splits the
//! interned index space into `target_shards` contiguous ranges of ratee
//! rows; each [`Shard`] owns the forward CSR, totals, patch overlay and
//! optional frequent aggregates for its range:
//!
//! * **refresh locality** — a dirty ratee touches exactly one shard; shards
//!   with no dirty rows are not read, written or compacted;
//! * **parallel maintenance** — shards rebuild and refresh under
//!   `rayon::par_iter_mut`, since their row ranges are disjoint;
//! * **bounded compaction** — the 25% patched-row threshold applies per
//!   shard, so compacting scattered updates costs O(shard), not O(matrix).
//!
//! Instead of the monolithic snapshot's reverse CSR (which interleaves all
//! shards and would serialize refresh), the sharded form keeps a plain
//! reverse *adjacency* (`rev_adj[j]` = sorted ratees j has rated, no
//! counters); pair probes binary-search the ratee's forward row inside its
//! shard, and the adjacency answers "whose verdicts can a rater's
//! reputation flip affect" during epoch-incremental detection.
//!
//! The snapshot also absorbs closed [`EpochDelta`]s directly
//! ([`ShardedSnapshot::apply_epoch`]) — counters merge into rows in place,
//! previously unseen nodes are re-interned with a monotone index remap —
//! so a long-running engine never replays a full history. Every mutation
//! path is bit-identical to a fresh build from an equivalent history; the
//! crate tests and the workspace `detection_equivalence`/`scale_props`
//! harnesses assert this.

use crate::epoch::EpochDelta;
use crate::fxhash::FxHashMap;
use crate::history::{InteractionHistory, NodeTotals, PairCounters};
use crate::id::NodeId;
use crate::snapshot::RefreshOutcome;
use crate::view::SnapshotView;
use rayon::prelude::*;

/// Per-row refresh diff: `(global row, old rater indices, new rater indices)`.
type RowDiff = (u32, Vec<u32>, Vec<u32>);

/// One epoch-delta entry with ids resolved to dense indices:
/// `(global ratee row, rater index, counter delta)`, sorted by row then
/// rater (id order and index order agree — interning is ascending by id).
type IdxEntry = (u32, u32, PairCounters);

/// Borrowed structure-of-arrays totals of one contiguous row range.
///
/// `total[k]`, `positive[k]`, `negative[k]` are the
/// [`NodeTotals`] of global row `base + k`. Produced by
/// [`ShardedSnapshot::totals_columns`] for the batch detection kernels.
#[derive(Clone, Copy, Debug)]
pub struct TotalsColumns<'a> {
    /// Global row index of element 0.
    pub base: u32,
    /// Per-ratee rating counts `N_i`.
    pub total: &'a [u64],
    /// Per-ratee positive counts.
    pub positive: &'a [u64],
    /// Per-ratee negative counts.
    pub negative: &'a [u64],
}

/// Rows-per-shard so that `n` rows split into at most `target` shards.
fn rows_per_shard_for(n: usize, target: usize) -> usize {
    if n == 0 {
        1
    } else {
        n.div_ceil(target.max(1))
    }
}

/// Merge the ascending ratee indices of one rater's `(rater, ratee)` edge
/// run into the rater's ascending adjacency list, in place, with one
/// backward two-pointer pass — every element moves at most once, against
/// the O(len) memmove a per-edge `Vec::insert` pays. Values already
/// present are skipped, so the result matches per-edge sorted insertion.
fn merge_sorted_into(list: &mut Vec<u32>, run: &[(u32, u32)]) {
    // Count genuinely new values first (monotone forward walk) so the
    // backward merge knows its final length up front.
    let mut new = 0usize;
    {
        let mut a = 0usize;
        for &(_, g) in run {
            a += list[a..].partition_point(|&x| x < g);
            if a >= list.len() || list[a] != g {
                new += 1;
            }
        }
    }
    if new == 0 {
        return;
    }
    let old_len = list.len();
    list.resize(old_len + new, 0);
    let mut w = old_len + new; // write cursor (exclusive)
    let mut a = old_len; // old elements [0, a) not yet merged
    let mut r = run.len();
    while r > 0 {
        let g = run[r - 1].1;
        while a > 0 && list[a - 1] > g {
            w -= 1;
            list[w] = list[a - 1];
            a -= 1;
        }
        if !(a > 0 && list[a - 1] == g) {
            w -= 1;
            list[w] = g;
        }
        r -= 1;
    }
    debug_assert_eq!(w, a);
}

/// One contiguous range of ratee rows with its own CSR arena and overlay.
///
/// Per-ratee totals are stored structure-of-arrays — three contiguous
/// `u64` columns instead of an array of structs — so the batch band/high
/// kernels in `collusion-core` can stream them with vector loads. The
/// spare arena double-buffers [`Shard::rebuild_with`]: epoch merges write
/// into it and swap, so steady-state closes never allocate.
#[derive(Clone, Debug)]
struct Shard {
    /// First global row index of the range.
    base: u32,
    /// Number of rows in the range.
    rows: usize,
    /// CSR offsets, `rows + 1` entries.
    row_offsets: Vec<u32>,
    /// Rater indices (global, ascending within each row).
    row_cols: Vec<u32>,
    /// Counters parallel to `row_cols`.
    row_cells: Vec<PairCounters>,
    /// Per-ratee rating counts `N_i` (SoA column).
    tot_total: Vec<u64>,
    /// Per-ratee positive counts (SoA column).
    tot_pos: Vec<u64>,
    /// Per-ratee negative counts (SoA column).
    tot_neg: Vec<u64>,
    /// Dirty-row overlays; resolved by [`Shard::row`].
    row_patch: Vec<Option<(Vec<u32>, Vec<PairCounters>)>>,
    /// Number of rows currently overlaid.
    patched_rows: usize,
    /// Per-ratee frequent aggregates, present iff the snapshot keeps them.
    freq: Option<Vec<(u64, i64)>>,
    /// Cell count with overlays resolved.
    nnz: usize,
    /// Spare CSR offsets for the double-buffered epoch merge.
    spare_offsets: Vec<u32>,
    /// Spare rater-index arena.
    spare_cols: Vec<u32>,
    /// Spare counter arena.
    spare_cells: Vec<PairCounters>,
    /// Brand-new `(rater, ratee row)` edges of the last merge, for the
    /// reverse-adjacency fix-up (reused, cleared per merge).
    new_edges: Vec<(u32, u32)>,
}

impl Shard {
    fn empty(base: u32, rows: usize, with_freq: bool) -> Shard {
        Shard {
            base,
            rows,
            row_offsets: vec![0u32; rows + 1],
            row_cols: Vec::new(),
            row_cells: Vec::new(),
            tot_total: vec![0; rows],
            tot_pos: vec![0; rows],
            tot_neg: vec![0; rows],
            row_patch: (0..rows).map(|_| None).collect(),
            patched_rows: 0,
            freq: with_freq.then(|| vec![(0, 0); rows]),
            nnz: 0,
            spare_offsets: Vec::new(),
            spare_cols: Vec::new(),
            spare_cells: Vec::new(),
            new_edges: Vec::new(),
        }
    }

    #[inline]
    fn totals(&self, local: usize) -> NodeTotals {
        NodeTotals {
            total: self.tot_total[local],
            positive: self.tot_pos[local],
            negative: self.tot_neg[local],
        }
    }

    #[inline]
    fn set_totals(&mut self, local: usize, t: NodeTotals) {
        self.tot_total[local] = t.total;
        self.tot_pos[local] = t.positive;
        self.tot_neg[local] = t.negative;
    }

    #[inline]
    fn row(&self, local: usize) -> (&[u32], &[PairCounters]) {
        if let Some((cols, cells)) = &self.row_patch[local] {
            return (cols, cells);
        }
        let (s, e) = (self.row_offsets[local] as usize, self.row_offsets[local + 1] as usize);
        (&self.row_cols[s..e], &self.row_cells[s..e])
    }

    /// Replace one row through the overlay, keeping `nnz` exact.
    fn set_row(&mut self, local: usize, cols: Vec<u32>, cells: Vec<PairCounters>) {
        let old_len = self.row(local).0.len();
        self.nnz = self.nnz + cols.len() - old_len;
        if self.row_patch[local].is_none() {
            self.patched_rows += 1;
        }
        self.row_patch[local] = Some((cols, cells));
    }

    /// Frequent aggregate of one row computed directly.
    fn row_freq(&self, local: usize, t_n: u64) -> (u64, i64) {
        let (_, cells) = self.row(local);
        let mut count = 0u64;
        let mut signed = 0i64;
        for c in cells {
            if c.total >= t_n {
                count += c.total;
                signed += c.signed();
            }
        }
        (count, signed)
    }

    /// Materialize overlays back into a packed arena.
    fn compact(&mut self) {
        if self.patched_rows == 0 {
            return;
        }
        assert!(self.nnz <= u32::MAX as usize, "too many cells for u32 shard offsets");
        let mut row_offsets = Vec::with_capacity(self.rows + 1);
        row_offsets.push(0u32);
        let mut row_cols = Vec::with_capacity(self.nnz);
        let mut row_cells = Vec::with_capacity(self.nnz);
        for local in 0..self.rows {
            let (cols, cells) = self.row(local);
            row_cols.extend_from_slice(cols);
            row_cells.extend_from_slice(cells);
            row_offsets.push(row_cols.len() as u32);
        }
        self.row_offsets = row_offsets;
        self.row_cols = row_cols;
        self.row_cells = row_cells;
        self.row_patch = (0..self.rows).map(|_| None).collect();
        self.patched_rows = 0;
    }

    /// Per-shard compaction threshold: >25% of rows overlaid.
    fn maybe_compact(&mut self) {
        if 4 * self.patched_rows > self.rows {
            self.compact();
        }
    }

    /// Merge one epoch's resolved delta entries (all rows owned by this
    /// shard, sorted by row then rater index) by rebuilding the packed
    /// arena into the spare buffers and swapping.
    ///
    /// Untouched row *ranges* are bulk-copied (`extend_from_slice`, no
    /// per-cell work); touched rows two-pointer-merge against their entry
    /// group. Totals and frequent aggregates update in place, brand-new
    /// `(rater, row)` edges are recorded in [`Shard::new_edges`] for the
    /// caller's reverse-adjacency fix-up. After the first few epochs the
    /// spare arenas have grown to capacity and the merge allocates
    /// nothing. Requires an empty overlay (`compact` first).
    fn rebuild_with(&mut self, entries: &[IdxEntry], freq_t_n: Option<u64>) {
        debug_assert_eq!(self.patched_rows, 0, "rebuild_with requires a compacted shard");
        // `u64::MAX` sentinel keeps the merge loop branch-simple when the
        // snapshot tracks no frequent aggregates (no cell ever qualifies).
        let freq_min = freq_t_n.unwrap_or(u64::MAX);
        self.new_edges.clear();
        let mut offs = std::mem::take(&mut self.spare_offsets);
        let mut cols = std::mem::take(&mut self.spare_cols);
        let mut cells = std::mem::take(&mut self.spare_cells);
        offs.clear();
        cols.clear();
        cells.clear();
        offs.reserve(self.rows + 1);
        cols.reserve(self.row_cols.len() + entries.len());
        cells.reserve(self.row_cells.len() + entries.len());
        offs.push(0u32);

        let src_offs: &[u32] = &self.row_offsets;
        let src_cols: &[u32] = &self.row_cols;
        let src_cells: &[PairCounters] = &self.row_cells;
        // Bulk-copy rows [from, to) unchanged; offsets shift uniformly by
        // however much earlier merged rows have grown.
        let copy_gap = |from: usize,
                        to: usize,
                        offs: &mut Vec<u32>,
                        cols: &mut Vec<u32>,
                        cells: &mut Vec<PairCounters>| {
            if from >= to {
                return;
            }
            let s = src_offs[from];
            let e = src_offs[to];
            let shift = (cols.len() as u32).wrapping_sub(s);
            cols.extend_from_slice(&src_cols[s as usize..e as usize]);
            cells.extend_from_slice(&src_cells[s as usize..e as usize]);
            offs.extend(src_offs[from + 1..=to].iter().map(|&o| o.wrapping_add(shift)));
        };

        let mut k = 0usize;
        let mut done = 0usize; // rows [0, done) emitted
        while k < entries.len() {
            let g = entries[k].0;
            let local = (g - self.base) as usize;
            copy_gap(done, local, &mut offs, &mut cols, &mut cells);

            let mut k_end = k + 1;
            while k_end < entries.len() && entries[k_end].0 == g {
                k_end += 1;
            }
            let group = &entries[k..k_end];
            let (s, e) = (src_offs[local] as usize, src_offs[local + 1] as usize);
            // Frequent-aggregate delta: only cells the group touches can
            // change their contribution, so track the exact integer diff
            // instead of rescanning the merged row (bit-identical — the
            // aggregate is a sum of integer contributions).
            let (mut dfreq_count, mut dfreq_signed) = (0i64, 0i64);
            // Merge by segment: groups are tiny relative to rows, so copy
            // the untouched run before each insertion point with one
            // `extend_from_slice` instead of per-cell pushes.
            let mut a = s;
            for &(_, r, d) in group {
                let pos = a + src_cols[a..e].partition_point(|&c| c < r);
                cols.extend_from_slice(&src_cols[a..pos]);
                cells.extend_from_slice(&src_cells[a..pos]);
                a = pos;
                cols.push(r);
                if a < e && src_cols[a] == r {
                    let old = src_cells[a];
                    let mut c = old;
                    c.merge(&d);
                    if old.total >= freq_min {
                        dfreq_count -= old.total as i64;
                        dfreq_signed -= old.signed();
                    }
                    if c.total >= freq_min {
                        dfreq_count += c.total as i64;
                        dfreq_signed += c.signed();
                    }
                    cells.push(c);
                    a += 1;
                } else {
                    if d.total >= freq_min {
                        dfreq_count += d.total as i64;
                        dfreq_signed += d.signed();
                    }
                    cells.push(d);
                    self.new_edges.push((r, g));
                }
            }
            cols.extend_from_slice(&src_cols[a..e]);
            cells.extend_from_slice(&src_cells[a..e]);
            offs.push(cols.len() as u32);

            for &(_, _, c) in group {
                self.tot_total[local] += c.total;
                self.tot_pos[local] += c.positive;
                self.tot_neg[local] += c.negative;
            }
            if dfreq_count != 0 || dfreq_signed != 0 {
                if let Some(f) = self.freq.as_mut() {
                    let (count, signed) = f[local];
                    f[local] = ((count as i64 + dfreq_count) as u64, signed + dfreq_signed);
                }
            }

            done = local + 1;
            k = k_end;
        }
        copy_gap(done, self.rows, &mut offs, &mut cols, &mut cells);

        assert!(cols.len() <= u32::MAX as usize, "too many cells for u32 shard offsets");
        std::mem::swap(&mut self.row_offsets, &mut offs);
        std::mem::swap(&mut self.row_cols, &mut cols);
        std::mem::swap(&mut self.row_cells, &mut cells);
        self.spare_offsets = offs;
        self.spare_cols = cols;
        self.spare_cells = cells;
        self.nnz = self.row_cols.len();
    }
}

/// Frozen CSR view of the rating matrix, sharded by ratee-index range.
///
/// Functionally equivalent to the monolithic
/// [`DetectionSnapshot`](crate::snapshot::DetectionSnapshot) (both implement
/// [`SnapshotView`], and detectors produce bit-identical suspect sets over
/// either), but maintainable shard-by-shard: refresh and epoch application
/// touch only shards owning dirty rows, in parallel.
#[derive(Clone, Debug)]
pub struct ShardedSnapshot {
    /// Interned node ids, ascending; `nodes[idx]` is the id of dense `idx`.
    nodes: Vec<NodeId>,
    /// id → dense index. Fx-hashed: ids are interned by this process, not
    /// attacker-chosen, and probe cost is on the per-rating hot path.
    index: FxHashMap<NodeId, u32>,
    /// Rows per shard (last shard may be short).
    rows_per_shard: usize,
    /// Requested shard count; actual count is `n.div_ceil(rows_per_shard)`.
    target_shards: usize,
    /// The shards, ascending by row range.
    shards: Vec<Shard>,
    /// `rev_adj[j]` = global ratee indices `j` has rated, ascending. No
    /// counters — pair probes go through the ratee's forward row.
    rev_adj: Vec<Vec<u32>>,
    /// `T_N` the per-shard frequent aggregates were computed for, if any.
    freq_t_n: Option<u64>,
    /// Reusable id→index resolution scratch for [`ShardedSnapshot::apply_epoch`].
    apply_idx: Vec<IdxEntry>,
    /// Reusable `(rater, ratee)` scratch for the reverse-adjacency fix-up.
    fixup_edges: Vec<(u32, u32)>,
}

impl ShardedSnapshot {
    /// Build a sharded snapshot of `history` over at most `target_shards`
    /// shards. The interned set is the union of `nodes` and every
    /// rater/ratee in the history, exactly as the monolithic build.
    pub fn build(history: &InteractionHistory, nodes: &[NodeId], target_shards: usize) -> Self {
        Self::build_inner(history, nodes.to_vec(), target_shards, None)
    }

    /// [`ShardedSnapshot::build`] plus eager per-shard frequent aggregates
    /// for `t_n` (the extended detection policy).
    pub fn build_with_frequent(
        history: &InteractionHistory,
        nodes: &[NodeId],
        target_shards: usize,
        t_n: u64,
    ) -> Self {
        Self::build_inner(history, nodes.to_vec(), target_shards, Some(t_n))
    }

    fn build_inner(
        history: &InteractionHistory,
        base: Vec<NodeId>,
        target_shards: usize,
        freq_t_n: Option<u64>,
    ) -> Self {
        let mut nodes = base;
        for (rater, ratee, _) in history.iter_pairs() {
            nodes.push(rater);
            nodes.push(ratee);
        }
        nodes.sort_unstable();
        nodes.dedup();
        assert!(nodes.len() <= u32::MAX as usize, "too many nodes for u32 interning");
        let n = nodes.len();
        let index: FxHashMap<NodeId, u32> =
            nodes.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        let rows_per_shard = rows_per_shard_for(n, target_shards);
        let n_shards = n.div_ceil(rows_per_shard);

        let nodes_ref = &nodes;
        let index_ref = &index;
        let shards: Vec<Shard> = (0..n_shards)
            .into_par_iter()
            .map(|s| {
                let base = s * rows_per_shard;
                let rows = rows_per_shard.min(n - base);
                let mut shard = Shard::empty(base as u32, rows, freq_t_n.is_some());
                let mut scratch: Vec<(u32, PairCounters)> = Vec::new();
                let mut row_offsets = Vec::with_capacity(rows + 1);
                row_offsets.push(0u32);
                let mut row_cols = Vec::new();
                let mut row_cells = Vec::new();
                for local in 0..rows {
                    let id = nodes_ref[base + local];
                    scratch.clear();
                    for &r in history.raters_of(id) {
                        scratch.push((index_ref[&r], history.pair(r, id)));
                    }
                    scratch.sort_unstable_by_key(|e| e.0);
                    for &(c, cell) in &scratch {
                        row_cols.push(c);
                        row_cells.push(cell);
                    }
                    row_offsets.push(row_cols.len() as u32);
                    shard.set_totals(local, history.totals(id));
                }
                assert!(
                    row_cols.len() <= u32::MAX as usize,
                    "too many cells for u32 shard offsets"
                );
                shard.nnz = row_cols.len();
                shard.row_offsets = row_offsets;
                shard.row_cols = row_cols;
                shard.row_cells = row_cells;
                if let (Some(t_n), Some(mut freq)) = (freq_t_n, shard.freq.take()) {
                    for (local, agg) in freq.iter_mut().enumerate() {
                        *agg = shard.row_freq(local, t_n);
                    }
                    shard.freq = Some(freq);
                }
                shard
            })
            .collect();

        // Reverse adjacency: ascending global row walk keeps each rater's
        // ratee list sorted without an explicit sort.
        let mut rev_adj: Vec<Vec<u32>> = (0..n).map(|_| Vec::new()).collect();
        for shard in &shards {
            for local in 0..shard.rows {
                let g = shard.base + local as u32;
                for &j in shard.row(local).0 {
                    rev_adj[j as usize].push(g);
                }
            }
        }

        ShardedSnapshot {
            nodes,
            index,
            rows_per_shard,
            target_shards,
            shards,
            rev_adj,
            freq_t_n,
            apply_idx: Vec::new(),
            fixup_edges: Vec::new(),
        }
    }

    // ----- Shape ------------------------------------------------------------

    /// Number of shards currently held.
    #[inline]
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of rows each shard covers (the last shard may be short).
    #[inline]
    pub fn rows_per_shard(&self) -> usize {
        self.rows_per_shard
    }

    /// Total overlaid rows across all shards.
    pub fn patched_rows(&self) -> usize {
        self.shards.iter().map(|s| s.patched_rows).sum()
    }

    /// Global ratee indices `rater` has rated, ascending — the reverse
    /// adjacency used to enumerate verdicts a reputation flip can affect.
    #[inline]
    pub fn ratees_of(&self, rater: u32) -> &[u32] {
        &self.rev_adj[rater as usize]
    }

    /// Iterate the per-shard structure-of-arrays totals columns, ascending
    /// by row range. Batch band/high kernels stream these with contiguous
    /// loads instead of one [`SnapshotView::totals_of`] probe per row.
    pub fn totals_columns(&self) -> impl Iterator<Item = TotalsColumns<'_>> {
        self.shards.iter().map(|s| TotalsColumns {
            base: s.base,
            total: &s.tot_total,
            positive: &s.tot_pos,
            negative: &s.tot_neg,
        })
    }

    #[inline]
    fn shard_of(&self, idx: u32) -> &Shard {
        &self.shards[idx as usize / self.rows_per_shard]
    }

    // ----- Incremental refresh ----------------------------------------------

    /// Bring the snapshot up to date with `history` by rebuilding only the
    /// rows of the `dirty` ratees, shard-parallel. Shards without dirty
    /// rows are untouched; a shard whose patch overlay passes 25% of its
    /// rows compacts locally. Falls back to a full (parallel) rebuild when
    /// a dirty ratee or one of its raters is not interned yet.
    pub fn refresh(&mut self, history: &InteractionHistory, dirty: &[NodeId]) -> RefreshOutcome {
        if dirty.is_empty() {
            return RefreshOutcome::Unchanged;
        }
        let mut need_rebuild = false;
        'scan: for &id in dirty {
            if !self.index.contains_key(&id) {
                need_rebuild = true;
                break;
            }
            for &r in history.raters_of(id) {
                if !self.index.contains_key(&r) {
                    need_rebuild = true;
                    break 'scan;
                }
            }
        }
        if need_rebuild {
            let nodes = std::mem::take(&mut self.nodes);
            *self = Self::build_inner(history, nodes, self.target_shards, self.freq_t_n);
            return RefreshOutcome::Rebuilt;
        }

        let mut by_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for &id in dirty {
            let g = self.index[&id];
            by_shard[g as usize / self.rows_per_shard].push(g);
        }

        let nodes = &self.nodes;
        let index = &self.index;
        let freq_t_n = self.freq_t_n;
        // Each shard rebuilds its dirty rows independently and reports the
        // (row, old raters, new raters) diffs for the adjacency fix-up.
        let diffs: Vec<Vec<RowDiff>> = self
            .shards
            .par_iter_mut()
            .zip(by_shard)
            .map(|(shard, gs)| {
                let mut out = Vec::with_capacity(gs.len());
                for g in gs {
                    let local = (g - shard.base) as usize;
                    let id = nodes[g as usize];
                    let old_cols = shard.row(local).0.to_vec();
                    let mut new_row: Vec<(u32, PairCounters)> = history
                        .raters_of(id)
                        .iter()
                        .map(|&r| (index[&r], history.pair(r, id)))
                        .collect();
                    new_row.sort_unstable_by_key(|e| e.0);
                    let new_cols: Vec<u32> = new_row.iter().map(|e| e.0).collect();
                    let new_cells: Vec<PairCounters> = new_row.iter().map(|e| e.1).collect();
                    shard.set_row(local, new_cols.clone(), new_cells);
                    shard.set_totals(local, history.totals(id));
                    if let Some(t_n) = freq_t_n {
                        let agg = shard.row_freq(local, t_n);
                        if let Some(f) = shard.freq.as_mut() {
                            f[local] = agg;
                        }
                    }
                    out.push((g, old_cols, new_cols));
                }
                shard.maybe_compact();
                out
            })
            .collect();

        for (g, old_cols, new_cols) in diffs.into_iter().flatten() {
            for &j in &new_cols {
                if old_cols.binary_search(&j).is_err() {
                    let list = &mut self.rev_adj[j as usize];
                    if let Err(pos) = list.binary_search(&g) {
                        list.insert(pos, g);
                    }
                }
            }
            for &j in &old_cols {
                if new_cols.binary_search(&j).is_err() {
                    let list = &mut self.rev_adj[j as usize];
                    if let Ok(pos) = list.binary_search(&g) {
                        list.remove(pos);
                    }
                }
            }
        }
        RefreshOutcome::Patched(dirty.len())
    }

    // ----- Epoch application ------------------------------------------------

    /// Merge one closed epoch's counter delta into the shards, without any
    /// backing history. Counters add cell-wise (LSM-style), totals and
    /// frequent aggregates update per touched row, new (rater, ratee) edges
    /// enter the reverse adjacency.
    ///
    /// The merge is a shard-parallel **arena rebuild**: ids resolve to
    /// dense indices once (reusable scratch), each touched shard rewrites
    /// its packed CSR into a retained spare arena — untouched row ranges
    /// bulk-copy, touched rows two-pointer-merge — and the arenas swap.
    /// Steady state (no fresh nodes, no overlays) allocates nothing and
    /// never pays the old per-row `Vec` + overlay + compaction costs.
    ///
    /// Previously unseen node ids are re-interned. Because interning is
    /// ascending by id, that *shifts dense indices*: the return value is
    /// then `Some(remap)` with `remap[old_idx] = new_idx` (strictly
    /// monotone) so callers can migrate index-keyed state. `None` means
    /// indices are unchanged.
    ///
    /// `threads` bounds the fork-join width of the per-shard merge (shard
    /// row ranges are disjoint, so the result is identical for any value;
    /// `1` runs inline and is the oracle the parallel path is tested
    /// against, `0` is resolved by the caller — pass an explicit count).
    pub fn apply_epoch(&mut self, delta: &EpochDelta, threads: usize) -> Option<Vec<u32>> {
        if delta.is_empty() {
            return None;
        }
        // Resolve optimistically: the steady state has no fresh ids, so
        // pay one resolution pass and only fall back to the
        // collect-fresh → reintern → re-resolve path on an actual miss.
        let mut idx = std::mem::take(&mut self.apply_idx);
        let mut remap = None;
        if !self.try_resolve(delta, &mut idx) {
            let mut fresh: Vec<NodeId> = delta
                .entries
                .iter()
                .flat_map(|&(ratee, rater, _)| [ratee, rater])
                .filter(|id| !self.index.contains_key(id))
                .collect();
            fresh.sort_unstable();
            fresh.dedup();
            remap = Some(self.reintern(&fresh, threads));
            let resolved = self.try_resolve(delta, &mut idx);
            assert!(resolved, "all delta ids must be interned after reintern");
        }

        let freq_t_n = self.freq_t_n;
        let idx_ref: &[IdxEntry] = &idx;
        crate::par::for_each_mut(threads, &mut self.shards, |shard| {
            let base = shard.base as usize;
            let lo = idx_ref.partition_point(|e| (e.0 as usize) < base);
            let hi = idx_ref.partition_point(|e| (e.0 as usize) < base + shard.rows);
            if lo == hi {
                return;
            }
            // Overlays only exist after a `refresh`; the epoch engine path
            // never patches, so this is a steady-state no-op.
            shard.compact();
            shard.rebuild_with(&idx_ref[lo..hi], freq_t_n);
        });

        // Serial reverse-adjacency fix-up from the per-shard new edges.
        // Gathered and sorted by rater so each touched list is extended by
        // ONE backward in-place merge instead of a `Vec::insert` (and its
        // memmove) per edge — the per-rater edge runs arrive sorted and a
        // rater's list is touched exactly once, so the resulting lists are
        // identical to per-edge sorted insertion.
        self.fixup_edges.clear();
        for shard in &self.shards {
            self.fixup_edges.extend_from_slice(&shard.new_edges);
        }
        self.fixup_edges.sort_unstable();
        let mut e = 0usize;
        while e < self.fixup_edges.len() {
            let j = self.fixup_edges[e].0;
            let mut e_end = e + 1;
            while e_end < self.fixup_edges.len() && self.fixup_edges[e_end].0 == j {
                e_end += 1;
            }
            merge_sorted_into(&mut self.rev_adj[j as usize], &self.fixup_edges[e..e_end]);
            e = e_end;
        }

        self.apply_idx = idx;
        remap
    }

    /// Resolve `delta`'s ids to dense `(row, rater index, counters)`
    /// entries in `out`. Entries arrive sorted by (ratee id, rater id) and
    /// interning is ascending by id, so the output is sorted by
    /// (row, rater index): ratees resolve by a monotone binary-search walk
    /// over `nodes`, raters by one Fx probe each. Returns `false` (with
    /// `out` unspecified) on the first id not interned yet.
    fn try_resolve(&self, delta: &EpochDelta, out: &mut Vec<IdxEntry>) -> bool {
        out.clear();
        out.reserve(delta.entries.len());
        let mut cursor = 0usize;
        let mut cur_ratee: Option<NodeId> = None;
        let mut cur_row = 0u32;
        for &(ratee, rater, c) in &delta.entries {
            if cur_ratee != Some(ratee) {
                cursor += self.nodes[cursor..].partition_point(|&x| x < ratee);
                if cursor >= self.nodes.len() || self.nodes[cursor] != ratee {
                    return false;
                }
                cur_ratee = Some(ratee);
                cur_row = cursor as u32;
            }
            match self.index.get(&rater) {
                Some(&r) => out.push((cur_row, r, c)),
                None => return false,
            }
        }
        true
    }

    /// Intern `fresh` ids (sorted, deduped, all previously unknown) and
    /// rebuild the shard partition under the widened index space. Returns
    /// the strictly monotone old-index → new-index remap. The remap itself
    /// is computed by one serial two-pointer merge — never split across
    /// threads — so it is deterministic for any `threads`; only the
    /// independent per-shard row migration forks.
    fn reintern(&mut self, fresh: &[NodeId], threads: usize) -> Vec<u32> {
        let old_nodes = std::mem::take(&mut self.nodes);
        let old_n = old_nodes.len();
        let mut merged: Vec<NodeId> = Vec::with_capacity(old_n + fresh.len());
        let mut remap: Vec<u32> = Vec::with_capacity(old_n);
        let mut old_of_new: Vec<Option<u32>> = Vec::with_capacity(old_n + fresh.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < old_n || b < fresh.len() {
            if b >= fresh.len() || (a < old_n && old_nodes[a] < fresh[b]) {
                remap.push(merged.len() as u32);
                old_of_new.push(Some(a as u32));
                merged.push(old_nodes[a]);
                a += 1;
            } else {
                old_of_new.push(None);
                merged.push(fresh[b]);
                b += 1;
            }
        }
        let n = merged.len();
        assert!(n <= u32::MAX as usize, "too many nodes for u32 interning");
        self.index = merged.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        self.nodes = merged;

        let old_rps = self.rows_per_shard;
        let old_shards = std::mem::take(&mut self.shards);
        self.rows_per_shard = rows_per_shard_for(n, self.target_shards);
        let rps = self.rows_per_shard;
        let n_shards = n.div_ceil(rps);

        let remap_ref = &remap;
        let old_of_new_ref = &old_of_new;
        let old_shards_ref = &old_shards;
        let freq_t_n = self.freq_t_n;
        self.shards = crate::par::map_indexed(threads, n_shards, |s| {
            let base = s * rps;
            let rows = rps.min(n - base);
            let mut shard = Shard::empty(base as u32, rows, freq_t_n.is_some());
            let mut row_offsets = Vec::with_capacity(rows + 1);
            row_offsets.push(0u32);
            let mut row_cols = Vec::new();
            let mut row_cells = Vec::new();
            for local in 0..rows {
                if let Some(og) = old_of_new_ref[base + local] {
                    let osh = &old_shards_ref[og as usize / old_rps];
                    let olocal = (og - osh.base) as usize;
                    let (cols, cells) = osh.row(olocal);
                    row_cols.extend(cols.iter().map(|&c| remap_ref[c as usize]));
                    row_cells.extend_from_slice(cells);
                    shard.set_totals(local, osh.totals(olocal));
                    if let (Some(f), Some(of)) = (shard.freq.as_mut(), osh.freq.as_ref()) {
                        f[local] = of[olocal];
                    }
                }
                row_offsets.push(row_cols.len() as u32);
            }
            shard.nnz = row_cols.len();
            shard.row_offsets = row_offsets;
            shard.row_cols = row_cols;
            shard.row_cells = row_cells;
            shard
        });

        let old_rev = std::mem::take(&mut self.rev_adj);
        let mut rev_adj: Vec<Vec<u32>> = (0..n).map(|_| Vec::new()).collect();
        for (oj, list) in old_rev.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            // The remap is strictly monotone, so remapped lists stay sorted.
            rev_adj[remap[oj] as usize] = list.into_iter().map(|g| remap[g as usize]).collect();
        }
        self.rev_adj = rev_adj;
        remap
    }
}

impl SnapshotView for ShardedSnapshot {
    #[inline]
    fn n(&self) -> usize {
        self.nodes.len()
    }

    #[inline]
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    #[inline]
    fn node_id(&self, idx: u32) -> NodeId {
        self.nodes[idx as usize]
    }

    #[inline]
    fn index(&self, id: NodeId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    fn nnz(&self) -> usize {
        self.shards.iter().map(|s| s.nnz).sum()
    }

    #[inline]
    fn row(&self, idx: u32) -> (&[u32], &[PairCounters]) {
        let shard = self.shard_of(idx);
        shard.row((idx - shard.base) as usize)
    }

    /// Pair probe via the *ratee's forward row* (the sharded form keeps no
    /// reverse counters): binary search inside one shard.
    #[inline]
    fn pair(&self, rater: u32, ratee: u32) -> PairCounters {
        let (cols, cells) = self.row(ratee);
        match cols.binary_search(&rater) {
            Ok(pos) => cells[pos],
            Err(_) => PairCounters::default(),
        }
    }

    #[inline]
    fn totals_of(&self, idx: u32) -> NodeTotals {
        let shard = self.shard_of(idx);
        shard.totals((idx - shard.base) as usize)
    }

    #[inline]
    fn frequent_agg(&self, t_n: u64, idx: u32) -> Option<(u64, i64)> {
        if self.freq_t_n != Some(t_n) {
            return None;
        }
        let shard = self.shard_of(idx);
        shard.freq.as_ref().map(|f| f[(idx - shard.base) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochBuffer;
    use crate::id::SimTime;
    use crate::rating::{Rating, RatingValue};
    use crate::snapshot::DetectionSnapshot;

    fn pseudo_ratings(seed: u64, n: u64, len: u64) -> Vec<Rating> {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..len)
            .map(|t| {
                let a = next() % n;
                let mut b = next() % n;
                if a == b {
                    b = (b + 1) % n;
                }
                let v = match next() % 3 {
                    0 => RatingValue::Negative,
                    1 => RatingValue::Neutral,
                    _ => RatingValue::Positive,
                };
                Rating::new(NodeId(a), NodeId(b), v, SimTime(t))
            })
            .collect()
    }

    fn record_all(h: &mut InteractionHistory, ratings: &[Rating]) {
        for &r in ratings {
            h.record(r);
        }
    }

    /// Both views agree on every probe the detectors make, and the sharded
    /// reverse adjacency inverts the forward rows exactly.
    fn assert_views_equal(sharded: &ShardedSnapshot, mono: &DetectionSnapshot) {
        assert_eq!(SnapshotView::n(sharded), SnapshotView::n(mono));
        assert_eq!(SnapshotView::nodes(sharded), SnapshotView::nodes(mono));
        assert_eq!(SnapshotView::nnz(sharded), SnapshotView::nnz(mono));
        for idx in 0..SnapshotView::n(mono) as u32 {
            assert_eq!(sharded.totals_of(idx), mono.totals_of(idx), "totals of {idx}");
            assert_eq!(SnapshotView::signed(sharded, idx), SnapshotView::signed(mono, idx));
            let (sc, scc) = SnapshotView::row(sharded, idx);
            let (mc, mcc) = SnapshotView::row(mono, idx);
            assert_eq!(sc, mc, "row cols of {idx}");
            assert_eq!(scc, mcc, "row cells of {idx}");
            for &j in sc {
                assert_eq!(
                    SnapshotView::pair(sharded, j, idx),
                    SnapshotView::pair(mono, j, idx),
                    "pair {j}->{idx}"
                );
                assert!(sharded.ratees_of(j).binary_search(&idx).is_ok(), "rev_adj missing");
            }
        }
        for j in 0..SnapshotView::n(sharded) as u32 {
            let ratees = sharded.ratees_of(j);
            assert!(ratees.windows(2).all(|w| w[0] < w[1]), "rev_adj of {j} not sorted");
            for &i in ratees {
                assert!(
                    SnapshotView::row(sharded, i).0.binary_search(&j).is_ok(),
                    "rev_adj phantom edge {j}->{i}"
                );
            }
        }
    }

    #[test]
    fn build_matches_monolithic_across_shard_counts() {
        let mut h = InteractionHistory::new();
        record_all(&mut h, &pseudo_ratings(7, 30, 600));
        let nodes: Vec<NodeId> = (0..30).map(NodeId).collect();
        let mono = DetectionSnapshot::build(&h, &nodes);
        for target in [1, 3, 7, 16, 64] {
            let sharded = ShardedSnapshot::build(&h, &nodes, target);
            assert!(sharded.n_shards() <= target.max(1));
            assert_views_equal(&sharded, &mono);
        }
    }

    #[test]
    fn refresh_matches_fresh_build() {
        let mut h = InteractionHistory::new();
        record_all(&mut h, &pseudo_ratings(21, 24, 400));
        let nodes: Vec<NodeId> = (0..24).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build(&h, &nodes, 5);
        h.take_dirty();
        for round in 0..8u64 {
            record_all(&mut h, &pseudo_ratings(100 + round, 24, 20));
            let dirty = h.take_dirty();
            let outcome = sharded.refresh(&h, &dirty);
            assert_ne!(outcome, RefreshOutcome::Unchanged);
            let mono = DetectionSnapshot::build(&h, &nodes);
            assert_views_equal(&sharded, &mono);
        }
    }

    #[test]
    fn refresh_with_new_node_rebuilds() {
        let mut h = InteractionHistory::new();
        record_all(&mut h, &pseudo_ratings(3, 10, 150));
        let nodes: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build(&h, &nodes, 4);
        h.take_dirty();
        h.record(Rating::positive(NodeId(500), NodeId(1), SimTime(900)));
        let dirty = h.take_dirty();
        assert_eq!(sharded.refresh(&h, &dirty), RefreshOutcome::Rebuilt);
        assert!(SnapshotView::index(&sharded, NodeId(500)).is_some());
        assert_views_equal(&sharded, &DetectionSnapshot::build(&h, &nodes));
    }

    #[test]
    fn shard_compaction_bounds_overlay() {
        let mut h = InteractionHistory::new();
        record_all(&mut h, &pseudo_ratings(9, 40, 400));
        let nodes: Vec<NodeId> = (0..40).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build(&h, &nodes, 4);
        h.take_dirty();
        for t in 0..200u64 {
            h.record(Rating::positive(NodeId(t % 40), NodeId((t + 1) % 40), SimTime(5000 + t)));
            let dirty = h.take_dirty();
            sharded.refresh(&h, &dirty);
            for shard in &sharded.shards {
                assert!(
                    4 * shard.patched_rows <= shard.rows + 4 * shard.rows.min(2),
                    "shard overlay unbounded"
                );
            }
        }
        assert_views_equal(&sharded, &DetectionSnapshot::build(&h, &nodes));
    }

    #[test]
    fn epoch_apply_matches_history_build() {
        let mut h = InteractionHistory::new();
        let base = pseudo_ratings(11, 20, 300);
        record_all(&mut h, &base);
        let nodes: Vec<NodeId> = (0..20).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build(&h, &nodes, 6);
        let mut buf = EpochBuffer::new();
        for round in 0..5u64 {
            let epoch = pseudo_ratings(700 + round, 20, 50);
            for &r in &epoch {
                buf.record(r);
                h.record(r);
            }
            let delta = buf.drain();
            let remap = sharded.apply_epoch(&delta, 2);
            assert!(remap.is_none(), "no new nodes expected");
            assert_views_equal(&sharded, &DetectionSnapshot::build(&h, &nodes));
        }
    }

    #[test]
    fn epoch_apply_interns_new_nodes_with_monotone_remap() {
        let mut h = InteractionHistory::new();
        record_all(&mut h, &pseudo_ratings(13, 10, 120));
        // leave gaps so the new ids land between existing ones
        let nodes: Vec<NodeId> = (0..20).step_by(2).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build(&h, &nodes, 3);
        let old_nodes: Vec<NodeId> = SnapshotView::nodes(&sharded).to_vec();
        let mut buf = EpochBuffer::new();
        let extra = [
            Rating::positive(NodeId(3), NodeId(0), SimTime(100)),
            Rating::negative(NodeId(15), NodeId(7), SimTime(101)),
            Rating::positive(NodeId(4), NodeId(100), SimTime(102)),
        ];
        for &r in &extra {
            buf.record(r);
            h.record(r);
        }
        let remap = sharded.apply_epoch(&buf.drain(), 2).expect("new nodes must remap");
        assert_eq!(remap.len(), old_nodes.len());
        for (old_idx, &new_idx) in remap.iter().enumerate() {
            assert_eq!(SnapshotView::node_id(&sharded, new_idx), old_nodes[old_idx]);
        }
        assert!(remap.windows(2).all(|w| w[0] < w[1]), "remap must be strictly monotone");
        assert_views_equal(&sharded, &DetectionSnapshot::build(&h, &nodes));
    }

    #[test]
    fn epoch_apply_keeps_frequent_aggregates_exact() {
        let mut h = InteractionHistory::new();
        record_all(&mut h, &pseudo_ratings(17, 12, 200));
        let nodes: Vec<NodeId> = (0..12).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build_with_frequent(&h, &nodes, 4, 20);
        let mut buf = EpochBuffer::new();
        for t in 0..30u64 {
            let r = Rating::positive(NodeId(1), NodeId(2), SimTime(800 + t));
            buf.record(r);
            h.record(r);
        }
        sharded.apply_epoch(&buf.drain(), 2);
        let mono = DetectionSnapshot::build_with_frequent(&h, &nodes, 20);
        for idx in 0..SnapshotView::n(&sharded) as u32 {
            assert_eq!(
                SnapshotView::frequent_agg(&sharded, 20, idx),
                SnapshotView::frequent_agg(&mono, 20, idx),
                "frequent agg of {idx}"
            );
            assert_eq!(
                SnapshotView::frequent_agg(&sharded, 20, idx),
                Some(SnapshotView::row_freq(&sharded, idx, 20))
            );
        }
        assert_eq!(SnapshotView::frequent_agg(&sharded, 19, 0), None);
    }

    #[test]
    fn empty_history_and_empty_delta() {
        let h = InteractionHistory::new();
        let nodes: Vec<NodeId> = (0..5).map(NodeId).collect();
        let mut sharded = ShardedSnapshot::build(&h, &nodes, 2);
        assert_eq!(SnapshotView::n(&sharded), 5);
        assert_eq!(SnapshotView::nnz(&sharded), 0);
        assert_eq!(sharded.refresh(&h, &[]), RefreshOutcome::Unchanged);
        assert!(sharded.apply_epoch(&EpochDelta::default(), 2).is_none());
        assert_views_equal(&sharded, &DetectionSnapshot::build(&h, &nodes));
    }
}
