//! Property-based tests for the reputation substrate.

use collusion_reputation::id::TimeWindow;
use collusion_reputation::prelude::*;
use collusion_reputation::trust_matrix::TrustMatrix;
use proptest::prelude::*;

fn ratings_strategy(n: u64, max_len: usize) -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..n, 0..n, 0..3u8, 0..500u64).prop_map(move |(a, b, v, t)| {
            let value = match v {
                0 => RatingValue::Negative,
                1 => RatingValue::Neutral,
                _ => RatingValue::Positive,
            };
            Rating::new(NodeId(a), NodeId(b), value, SimTime(t))
        }),
        0..max_len,
    )
}

proptest! {
    /// Log → history and log → windowed histories are consistent: the
    /// union of two disjoint windows equals the full-window history.
    #[test]
    fn window_histories_partition(ratings in ratings_strategy(6, 300), split in 0..500u64) {
        let log: RatingLog = ratings.iter().copied().collect();
        let first = log.history_in(TimeWindow::new(SimTime(0), SimTime(split)));
        let second = log.history_in(TimeWindow::new(SimTime(split), SimTime(500)));
        let full = log.history_in(TimeWindow::new(SimTime(0), SimTime(500)));
        let mut merged = first.clone();
        merged.merge(&second);
        for i in (0..6).map(NodeId) {
            prop_assert_eq!(merged.ratings_for(i), full.ratings_for(i));
            prop_assert_eq!(merged.signed_reputation(i), full.signed_reputation(i));
        }
    }

    /// The signed reputation always equals positives − negatives and is
    /// bounded by ±(ratings received).
    #[test]
    fn signed_reputation_bounds(ratings in ratings_strategy(6, 300)) {
        let mut h = InteractionHistory::new();
        for r in &ratings {
            h.record(*r);
        }
        for i in (0..6).map(NodeId) {
            let t = h.totals(i);
            prop_assert_eq!(h.signed_reputation(i), t.positive as i64 - t.negative as i64);
            prop_assert!(h.signed_reputation(i).unsigned_abs() <= t.total);
            if let Some(f) = h.positive_fraction(i) {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }

    /// Trust matrices are always row-stochastic and non-negative.
    #[test]
    fn trust_matrix_row_stochastic(ratings in ratings_strategy(8, 400)) {
        let mut h = InteractionHistory::new();
        for r in &ratings {
            h.record(*r);
        }
        let m = TrustMatrix::from_history(&h, 8);
        prop_assert!(m.is_row_stochastic(1e-9));
        for i in 0..8 {
            for &(_, v) in m.row(i) {
                prop_assert!(v > 0.0 && v <= 1.0 + 1e-12);
            }
        }
    }

    /// transpose_mul preserves probability mass when the input is a
    /// distribution (rows are stochastic; empty rows redirect via p).
    #[test]
    fn transpose_mul_preserves_mass(ratings in ratings_strategy(8, 400)) {
        let mut h = InteractionHistory::new();
        for r in &ratings {
            h.record(*r);
        }
        let m = TrustMatrix::from_history(&h, 8);
        let p = EigenTrust::pretrusted_distribution(8, &[NodeId(0)]);
        let t = vec![1.0 / 8.0; 8];
        let mut out = vec![0.0; 8];
        m.transpose_mul_with_fallback(&t, &p, &mut out);
        let mass: f64 = out.iter().sum();
        prop_assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");
    }

    /// EigenTrust trust is monotone under strictly added praise from a
    /// pretrusted node (more positive local trust toward a node never
    /// reduces its share of the pretrusted node's row).
    #[test]
    fn eigentrust_pretrusted_praise_helps(ratings in ratings_strategy(8, 200)) {
        let mut h = InteractionHistory::new();
        for r in &ratings {
            h.record(*r);
        }
        let engine = EigenTrust::default();
        let before = engine.compute_from_history(&h, 8, &[NodeId(0)]);
        let mut h2 = h.clone();
        for t in 0..50 {
            h2.record(Rating::positive(NodeId(0), NodeId(5), SimTime(1000 + t)));
        }
        let after = engine.compute_from_history(&h2, 8, &[NodeId(0)]);
        prop_assert!(
            after.trust_of(NodeId(5)) + 1e-12 >= before.trust_of(NodeId(5)),
            "pretrusted praise lowered trust: {} -> {}",
            before.trust_of(NodeId(5)),
            after.trust_of(NodeId(5))
        );
    }

    /// Weighted sums: normalized output is a sub-distribution (sums to 1
    /// when any positive mass exists) and pretrusted weighting dominates.
    #[test]
    fn weighted_sum_distribution(ratings in ratings_strategy(8, 300)) {
        let mut h = InteractionHistory::new();
        for r in &ratings {
            h.record(*r);
        }
        let res = WeightedSumEngine::default().compute(&h, 8, &[NodeId(0)]);
        let sum: f64 = res.reputation.iter().sum();
        prop_assert!(sum.abs() < 1e-9 || (sum - 1.0).abs() < 1e-9, "sum {sum}");
        prop_assert!(res.reputation.iter().all(|&v| v >= 0.0));
    }

    /// Centralized manager and a manager partition agree on every counter
    /// for any ownership function.
    #[test]
    fn partition_equals_centralized(ratings in ratings_strategy(6, 300), managers in 1u64..5) {
        let nodes: Vec<NodeId> = (0..6).map(NodeId).collect();
        let mut part = ManagerPartition::from_fn(&nodes, |n| NodeId(100 + n.raw() % managers));
        let mut central = CentralizedManager::new();
        for r in &ratings {
            part.submit(*r);
            central.submit(*r);
        }
        let merged = part.merged_history();
        for i in &nodes {
            prop_assert_eq!(merged.ratings_for(*i), central.history().ratings_for(*i));
            prop_assert_eq!(merged.signed_reputation(*i), central.history().signed_reputation(*i));
        }
    }
}

use collusion_reputation::manager::ManagerPartition;
