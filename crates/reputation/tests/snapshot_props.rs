//! Property-based tests for the CSR detection snapshot.
//!
//! The snapshot is a frozen view of an [`InteractionHistory`]; these
//! properties pin the two invariants the detectors lean on: the view is
//! faithful under every history mutation path (`record`, `merge`,
//! `split_off_ratee`, incremental `refresh`), and the rater lists that feed
//! the CSR rows never contain duplicates.

use collusion_reputation::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn ratings_strategy(n: u64, max_len: usize) -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..n, 0..n, 0..3u8, 0..500u64).prop_map(move |(a, b, v, t)| {
            let value = match v {
                0 => RatingValue::Negative,
                1 => RatingValue::Neutral,
                _ => RatingValue::Positive,
            };
            Rating::new(NodeId(a), NodeId(b), value, SimTime(t))
        }),
        0..max_len,
    )
}

fn history_of(ratings: &[Rating]) -> InteractionHistory {
    let mut h = InteractionHistory::new();
    for r in ratings {
        h.record(*r);
    }
    h
}

const N: u64 = 6;

proptest! {
    /// Merging two histories and snapshotting equals snapshotting the
    /// history that recorded the concatenated rating stream directly.
    /// (Snapshot equality is logical — nodes, totals, resolved rows — so
    /// it is independent of how the counters were accumulated.)
    #[test]
    fn merge_then_snapshot_equals_snapshot_of_merged(
        first in ratings_strategy(N, 200),
        second in ratings_strategy(N, 200),
    ) {
        let nodes: Vec<NodeId> = (0..N).map(NodeId).collect();
        let mut merged = history_of(&first);
        merged.merge(&history_of(&second));
        let all: Vec<Rating> = first.iter().chain(second.iter()).copied().collect();
        let direct = history_of(&all);
        let a = DetectionSnapshot::build(&merged, &nodes);
        let b = DetectionSnapshot::build(&direct, &nodes);
        prop_assert_eq!(a, b);
    }

    /// `raters_of` stays duplicate-free for every ratee across `merge` and
    /// `split_off_ratee` round-trips (the CSR build trusts this: each rater
    /// contributes exactly one column to a row).
    #[test]
    fn raters_of_duplicate_free_across_round_trips(
        first in ratings_strategy(N, 200),
        second in ratings_strategy(N, 200),
        moved in 0..N,
    ) {
        let mut h = history_of(&first);
        h.merge(&history_of(&second));
        // split one ratee's row out and merge it back in
        let slice = h.split_off_ratee(NodeId(moved));
        h.merge(&slice);
        for ratee in (0..N).map(NodeId) {
            let raters = h.raters_of(ratee);
            let unique: BTreeSet<NodeId> = raters.iter().copied().collect();
            prop_assert_eq!(
                unique.len(),
                raters.len(),
                "duplicate rater for {}: {:?}",
                ratee,
                raters
            );
            // and every listed rater genuinely rated the ratee
            for &rater in raters {
                prop_assert!(h.pair(rater, ratee).total > 0);
            }
        }
    }

    /// Incremental `refresh` over the dirty-ratee set converges to the same
    /// snapshot a full rebuild produces, no matter how the extra ratings
    /// are spread.
    #[test]
    fn refresh_equals_rebuild(
        base in ratings_strategy(N, 200),
        extra in ratings_strategy(N, 60),
    ) {
        let nodes: Vec<NodeId> = (0..N).map(NodeId).collect();
        let mut h = history_of(&base);
        h.clear_dirty();
        let mut snap = DetectionSnapshot::build(&h, &nodes);
        for r in &extra {
            h.record(*r);
        }
        let dirty = h.take_dirty();
        snap.refresh(&h, &dirty);
        let rebuilt = DetectionSnapshot::build(&h, &nodes);
        prop_assert_eq!(snap, rebuilt);
    }
}
