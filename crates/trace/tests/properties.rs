//! Property-based tests for the trace generators and analysis.

use collusion_reputation::id::NodeId;
use collusion_trace::amazon::{generate as amazon_generate, AmazonConfig, SellerSpec};
use collusion_trace::graph::{ComponentKind, InteractionGraph};
use collusion_trace::model::{Trace, TraceRecord};
use collusion_trace::overstock::{generate as overstock_generate, OverstockConfig};
use collusion_trace::stats::TraceStats;
use collusion_trace::suspicious::find_suspicious;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seller volumes match their specs regardless of configuration.
    #[test]
    fn amazon_volumes_match_spec(seed in 0u64..1_000, n_sellers in 2usize..8) {
        let mut cfg = AmazonConfig::paper(0.01, seed);
        cfg.sellers = (0..n_sellers)
            .map(|k| SellerSpec {
                organic_positive_rate: 0.5 + 0.05 * (k % 5) as f64,
                annual_ratings: 200 + 40 * k as u64,
                colluding: k % 3 == 0,
            })
            .collect();
        let t = amazon_generate(&cfg);
        let stats = TraceStats::compute(&t.trace);
        for (sid, spec) in cfg.sellers.iter().enumerate() {
            let s = stats.seller(NodeId(sid as u64)).unwrap();
            // colluding sellers may exceed the annual volume slightly when
            // the booster draw exceeds the reserved share; honest sellers
            // match exactly
            if spec.colluding {
                prop_assert!(s.total >= spec.annual_ratings);
                prop_assert!(s.total <= spec.annual_ratings
                    + cfg.boosters_per_colluder * cfg.booster_ratings.1
                    + cfg.rivals_per_colluder * cfg.rival_ratings.1);
            } else {
                prop_assert_eq!(s.total, spec.annual_ratings);
            }
        }
    }

    /// The suspicious report's seller set is monotone in the threshold.
    #[test]
    fn suspicious_threshold_monotone(seed in 0u64..500, lo in 10u64..25, delta in 1u64..25) {
        let t = amazon_generate(&AmazonConfig::paper(0.01, seed));
        let stats = TraceStats::compute(&t.trace);
        let low = find_suspicious(&t.trace, &stats, lo);
        let high = find_suspicious(&t.trace, &stats, lo + delta);
        let low_pairs: std::collections::BTreeSet<_> =
            low.pairs.iter().map(|p| (p.rater, p.seller)).collect();
        for p in &high.pairs {
            prop_assert!(low_pairs.contains(&(p.rater, p.seller)));
        }
    }

    /// Overstock: injected pairs always surface as graph edges; components
    /// containing only injected pairs are never closed.
    #[test]
    fn overstock_pairs_surface(seed in 0u64..500, pairs in 1u64..20) {
        let mut cfg = OverstockConfig::paper(0.01, seed);
        cfg.colluding_pairs = pairs;
        let t = overstock_generate(&cfg);
        let g = InteractionGraph::from_trace(&t.trace, 20);
        for &(a, b) in &t.pairs {
            prop_assert!(g.has_edge(a, b));
        }
        let (_, _, closed) = g.structure_census();
        prop_assert_eq!(closed, 0);
    }

    /// Graph component classification is exhaustive and edge-consistent.
    #[test]
    fn component_classification_consistent(
        edges in prop::collection::btree_set((0u64..30, 0u64..30), 0..60),
    ) {
        let mut g = InteractionGraph::default();
        for &(a, b) in &edges {
            if a != b {
                g.add_edge(NodeId(a), NodeId(b));
            }
        }
        let comps = g.components();
        let mut seen = std::collections::BTreeSet::new();
        let mut total_edges = 0;
        for c in &comps {
            prop_assert!(c.nodes.len() >= 2, "singleton component {c:?}");
            for n in &c.nodes {
                prop_assert!(seen.insert(*n), "node {n} in two components");
            }
            total_edges += c.edges;
            match c.kind {
                ComponentKind::Pair => {
                    prop_assert_eq!(c.nodes.len(), 2);
                    prop_assert_eq!(c.edges, 1);
                }
                ComponentKind::Chain => {
                    prop_assert!(c.nodes.len() >= 3);
                    prop_assert_eq!(c.edges, c.nodes.len() - 1);
                }
                ComponentKind::Closed => {
                    prop_assert!(c.edges >= c.nodes.len());
                }
            }
        }
        prop_assert_eq!(total_edges, g.edge_count());
        prop_assert_eq!(seen.len(), g.nodes().len());
    }

    /// Star classification matches RatingValue semantics on arbitrary
    /// records.
    #[test]
    fn record_classification_total(stars in 1u8..=5, day in 0u64..400) {
        let r = TraceRecord { rater: NodeId(1), ratee: NodeId(2), stars, day };
        let v = r.value();
        match stars {
            1 | 2 => prop_assert!(v.is_negative()),
            3 => prop_assert!(!v.is_negative() && !v.is_positive()),
            _ => prop_assert!(v.is_positive()),
        }
        prop_assert_eq!(r.to_rating().time.raw(), day);
    }

    /// Trace → RatingLog conversion preserves per-pair counts.
    #[test]
    fn trace_to_log_preserves_counts(
        records in prop::collection::vec((0u64..6, 0u64..6, 1u8..=5, 0u64..100), 0..200),
    ) {
        let mut t = Trace::new(100);
        for (a, b, stars, day) in records {
            if a != b {
                t.records.push(TraceRecord { rater: NodeId(a), ratee: NodeId(b), stars, day });
            }
        }
        let h = t.to_rating_log().history();
        let stats = TraceStats::compute(&t);
        for a in (0..6).map(NodeId) {
            for b in (0..6).map(NodeId) {
                prop_assert_eq!(h.ratings_from_to(a, b), stats.pair_count(a, b));
            }
        }
    }
}
