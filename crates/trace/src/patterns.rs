//! Rater behaviour patterns over time — Figure 1(b).
//!
//! The paper inspects one suspicious seller (reputation 0.95) and finds
//! three rater archetypes among its frequent raters:
//!
//! * raters 2–3 "continuously rated the seller with the highest score 5" —
//!   **boosters** (likely collusion partners);
//! * rater 1 "continuously rated with the lowest score" — a **rival**
//!   colluder depressing the reputation;
//! * raters 4–5 "sometimes gave high and sometimes gave low ratings" —
//!   **mixed**, i.e. ordinary customers.
//!
//! [`rating_timeline`] extracts the per-rater time series that Figure 1(b)
//! plots, and [`classify_rater`] assigns the archetype.

use crate::model::Trace;
use collusion_reputation::id::NodeId;
use serde::{Deserialize, Serialize};

/// Behaviour archetype of a (rater, seller) relationship.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaterPattern {
    /// Frequent and uniformly high (4–5 stars): suspected collusion partner.
    Booster,
    /// Frequent and uniformly low (1–2 stars): suspected rival colluder.
    Rival,
    /// Frequent but mixed: a genuine repeat customer.
    Mixed,
    /// Too few ratings to classify (below `min_ratings`).
    Occasional,
}

/// The (day, stars) series of one rater about one seller, day-ordered
/// (ties keep record order).
pub fn rating_timeline(trace: &Trace, rater: NodeId, seller: NodeId) -> Vec<(u64, u8)> {
    let mut v: Vec<(u64, u8)> = trace
        .records
        .iter()
        .filter(|r| r.rater == rater && r.ratee == seller)
        .map(|r| (r.day, r.stars))
        .collect();
    v.sort_by_key(|&(d, _)| d);
    v
}

/// Classify the rater's behaviour toward `seller`.
///
/// `min_ratings` is the frequency floor below which the relationship is
/// [`RaterPattern::Occasional`] (the paper looks at raters with >15
/// ratings). `tolerance` is the fraction of off-pattern ratings a
/// booster/rival may have (Amazon boosters occasionally misclick; default
/// callers use 0.1).
pub fn classify_rater(
    trace: &Trace,
    rater: NodeId,
    seller: NodeId,
    min_ratings: u64,
    tolerance: f64,
) -> RaterPattern {
    let timeline = rating_timeline(trace, rater, seller);
    let n = timeline.len() as u64;
    if n < min_ratings {
        return RaterPattern::Occasional;
    }
    let high = timeline.iter().filter(|&&(_, s)| s >= 4).count() as f64;
    let low = timeline.iter().filter(|&&(_, s)| s <= 2).count() as f64;
    let total = n as f64;
    if high / total >= 1.0 - tolerance {
        RaterPattern::Booster
    } else if low / total >= 1.0 - tolerance {
        RaterPattern::Rival
    } else {
        RaterPattern::Mixed
    }
}

/// Classify every frequent rater of `seller`, ordered by rating count
/// descending. Returns `(rater, count, pattern)` rows — the data behind
/// Figure 1(b)'s rater selection.
pub fn classify_all_raters(
    trace: &Trace,
    seller: NodeId,
    min_ratings: u64,
    tolerance: f64,
) -> Vec<(NodeId, u64, RaterPattern)> {
    use std::collections::HashMap;
    let mut counts: HashMap<NodeId, u64> = HashMap::new();
    for r in trace.received_by(seller) {
        *counts.entry(r.rater).or_default() += 1;
    }
    let mut rows: Vec<(NodeId, u64, RaterPattern)> = counts
        .into_iter()
        .filter(|&(_, c)| c >= min_ratings)
        .map(|(rater, c)| (rater, c, classify_rater(trace, rater, seller, min_ratings, tolerance)))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amazon::{generate, AmazonConfig};
    use crate::model::TraceRecord;

    fn rec(rater: u64, seller: u64, stars: u8, day: u64) -> TraceRecord {
        TraceRecord { rater: NodeId(rater), ratee: NodeId(seller), stars, day }
    }

    #[test]
    fn timeline_is_day_ordered() {
        let mut t = Trace::new(10);
        t.records.push(rec(1, 9, 5, 7));
        t.records.push(rec(1, 9, 4, 2));
        t.records.push(rec(2, 9, 1, 0)); // different rater
        t.records.push(rec(1, 8, 3, 1)); // different seller
        let tl = rating_timeline(&t, NodeId(1), NodeId(9));
        assert_eq!(tl, vec![(2, 4), (7, 5)]);
    }

    #[test]
    fn archetypes_classified() {
        let mut t = Trace::new(40);
        for d in 0..30u64 {
            t.records.push(rec(1, 9, 5, d)); // booster
            t.records.push(rec(2, 9, 1, d)); // rival
            t.records.push(rec(3, 9, if d % 2 == 0 { 5 } else { 1 }, d)); // mixed
        }
        t.records.push(rec(4, 9, 5, 0)); // occasional
        assert_eq!(classify_rater(&t, NodeId(1), NodeId(9), 15, 0.1), RaterPattern::Booster);
        assert_eq!(classify_rater(&t, NodeId(2), NodeId(9), 15, 0.1), RaterPattern::Rival);
        assert_eq!(classify_rater(&t, NodeId(3), NodeId(9), 15, 0.1), RaterPattern::Mixed);
        assert_eq!(classify_rater(&t, NodeId(4), NodeId(9), 15, 0.1), RaterPattern::Occasional);
    }

    #[test]
    fn tolerance_absorbs_occasional_offpattern() {
        let mut t = Trace::new(40);
        for d in 0..29u64 {
            t.records.push(rec(1, 9, 5, d));
        }
        t.records.push(rec(1, 9, 2, 30)); // one slip in 30
        assert_eq!(classify_rater(&t, NodeId(1), NodeId(9), 15, 0.1), RaterPattern::Booster);
        assert_eq!(classify_rater(&t, NodeId(1), NodeId(9), 15, 0.0), RaterPattern::Mixed);
    }

    #[test]
    fn classify_all_orders_by_count() {
        let mut t = Trace::new(40);
        for d in 0..20u64 {
            t.records.push(rec(1, 9, 5, d));
        }
        for d in 0..25u64 {
            t.records.push(rec(2, 9, 1, d));
        }
        let rows = classify_all_raters(&t, NodeId(9), 15, 0.1);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, NodeId(2));
        assert_eq!(rows[0].2, RaterPattern::Rival);
        assert_eq!(rows[1].2, RaterPattern::Booster);
    }

    #[test]
    fn synthetic_colluding_seller_shows_figure_1b_patterns() {
        let at = generate(&AmazonConfig::paper(0.01, 21));
        let seller = at.colluding_sellers()[0];
        let rows = classify_all_raters(&at.trace, seller, 15, 0.1);
        let boosters = rows.iter().filter(|r| r.2 == RaterPattern::Booster).count();
        let rivals = rows.iter().filter(|r| r.2 == RaterPattern::Rival).count();
        assert!(boosters >= 1, "no booster pattern found at colluding seller");
        assert!(rivals >= 1, "no rival pattern found at colluding seller");
    }

    #[test]
    fn honest_seller_has_no_frequent_boosters() {
        let at = generate(&AmazonConfig::paper(0.01, 21));
        let honest = NodeId(18);
        let rows = classify_all_raters(&at.trace, honest, 15, 0.1);
        assert!(rows.is_empty(), "honest seller unexpectedly has frequent raters: {rows:?}");
    }
}
