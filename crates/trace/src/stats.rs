//! Trace statistics — Figures 1(a) and 1(c).
//!
//! [`TraceStats`] aggregates a trace once and answers the analysis queries
//! of §III: per-seller positive/negative totals and final reputation
//! (Figure 1a), per-pair rating counts (the suspicious filter's input), and
//! per-rater frequency statistics — average ratings per day, busiest-day
//! count — for the raters of a given seller (Figure 1c).

use crate::model::Trace;
use collusion_reputation::id::NodeId;
use collusion_reputation::rating::RatingValue;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate counters for one seller.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SellerStats {
    /// Seller id.
    pub seller: NodeId,
    /// All ratings received.
    pub total: u64,
    /// Positive ratings (4–5 stars).
    pub positive: u64,
    /// Negative ratings (1–2 stars).
    pub negative: u64,
    /// Neutral ratings (3 stars).
    pub neutral: u64,
}

impl SellerStats {
    /// Amazon's published reputation: positives / all ratings.
    pub fn reputation(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.positive as f64 / self.total as f64
        }
    }
}

/// Per-rater frequency statistics for the raters of one seller (Figure 1c).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RaterFrequency {
    /// The rater.
    pub rater: NodeId,
    /// Total ratings this rater gave the seller.
    pub total: u64,
    /// Average ratings per day over the whole window.
    pub avg_per_day: f64,
    /// Ratings on the rater's busiest day.
    pub max_per_day: u64,
}

/// One-pass aggregation over a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    sellers: HashMap<NodeId, SellerStats>,
    pair_counts: HashMap<(NodeId, NodeId), u64>,
    days: u64,
}

impl TraceStats {
    /// Aggregate `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut sellers: HashMap<NodeId, SellerStats> = HashMap::new();
        let mut pair_counts: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for r in &trace.records {
            let s = sellers
                .entry(r.ratee)
                .or_insert_with(|| SellerStats { seller: r.ratee, ..Default::default() });
            s.total += 1;
            match r.value() {
                RatingValue::Positive => s.positive += 1,
                RatingValue::Negative => s.negative += 1,
                RatingValue::Neutral => s.neutral += 1,
            }
            *pair_counts.entry((r.rater, r.ratee)).or_default() += 1;
        }
        TraceStats { sellers, pair_counts, days: trace.days.max(1) }
    }

    /// Stats for one seller, if rated at all.
    pub fn seller(&self, id: NodeId) -> Option<&SellerStats> {
        self.sellers.get(&id)
    }

    /// All sellers ordered by reputation descending (Figure 1a's x-axis),
    /// ties broken by id.
    pub fn by_reputation_desc(&self) -> Vec<SellerStats> {
        let mut v: Vec<SellerStats> = self.sellers.values().copied().collect();
        v.sort_by(|a, b| {
            b.reputation()
                .partial_cmp(&a.reputation())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.seller.cmp(&b.seller))
        });
        v
    }

    /// Ratings from `rater` to `seller`.
    pub fn pair_count(&self, rater: NodeId, seller: NodeId) -> u64 {
        self.pair_counts.get(&(rater, seller)).copied().unwrap_or(0)
    }

    /// Iterate all (rater, seller, count) triples.
    pub fn pairs(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        self.pair_counts.iter().map(|(&(r, s), &c)| (r, s, c))
    }

    /// The crawl window length in days.
    pub fn days(&self) -> u64 {
        self.days
    }

    /// Figure 1(c): per-rater frequency statistics for one seller, ordered
    /// by total descending.
    pub fn rater_frequencies(&self, trace: &Trace, seller: NodeId) -> Vec<RaterFrequency> {
        let mut per_rater_day: HashMap<(NodeId, u64), u64> = HashMap::new();
        let mut totals: HashMap<NodeId, u64> = HashMap::new();
        for r in trace.received_by(seller) {
            *per_rater_day.entry((r.rater, r.day)).or_default() += 1;
            *totals.entry(r.rater).or_default() += 1;
        }
        let mut max_day: HashMap<NodeId, u64> = HashMap::new();
        for (&(rater, _), &c) in &per_rater_day {
            let e = max_day.entry(rater).or_default();
            *e = (*e).max(c);
        }
        let mut out: Vec<RaterFrequency> = totals
            .into_iter()
            .map(|(rater, total)| RaterFrequency {
                rater,
                total,
                avg_per_day: total as f64 / self.days as f64,
                max_per_day: max_day[&rater],
            })
            .collect();
        out.sort_by(|a, b| b.total.cmp(&a.total).then(a.rater.cmp(&b.rater)));
        out
    }

    /// Summary of rater behaviour for one seller: (mean total per rater,
    /// max total, variance of totals). Suspicious sellers show much larger
    /// max and variance than unsuspicious ones (Figure 1c's observation).
    pub fn rater_summary(&self, trace: &Trace, seller: NodeId) -> (f64, u64, f64) {
        let freqs = self.rater_frequencies(trace, seller);
        if freqs.is_empty() {
            return (0.0, 0, 0.0);
        }
        let n = freqs.len() as f64;
        let mean = freqs.iter().map(|f| f.total as f64).sum::<f64>() / n;
        let max = freqs.iter().map(|f| f.total).max().unwrap();
        let var = freqs.iter().map(|f| (f.total as f64 - mean).powi(2)).sum::<f64>() / n;
        (mean, max, var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceRecord;

    fn trace() -> Trace {
        let mut t = Trace::new(10);
        let rec = |rater: u64, seller: u64, stars: u8, day: u64| TraceRecord {
            rater: NodeId(rater),
            ratee: NodeId(seller),
            stars,
            day,
        };
        // seller 100: rater 1 gives 5★ on days 0,0,1; rater 2 gives 1★ day 2
        t.records.push(rec(1, 100, 5, 0));
        t.records.push(rec(1, 100, 5, 0));
        t.records.push(rec(1, 100, 4, 1));
        t.records.push(rec(2, 100, 1, 2));
        // seller 200: one neutral
        t.records.push(rec(3, 200, 3, 5));
        t
    }

    #[test]
    fn seller_stats_aggregate() {
        let stats = TraceStats::compute(&trace());
        let s = stats.seller(NodeId(100)).unwrap();
        assert_eq!(s.total, 4);
        assert_eq!(s.positive, 3);
        assert_eq!(s.negative, 1);
        assert_eq!(s.reputation(), 0.75);
        let s2 = stats.seller(NodeId(200)).unwrap();
        assert_eq!(s2.neutral, 1);
        assert_eq!(s2.reputation(), 0.0);
        assert!(stats.seller(NodeId(999)).is_none());
    }

    #[test]
    fn reputation_ordering() {
        let stats = TraceStats::compute(&trace());
        let ordered = stats.by_reputation_desc();
        assert_eq!(ordered[0].seller, NodeId(100));
        assert_eq!(ordered[1].seller, NodeId(200));
    }

    #[test]
    fn pair_counts() {
        let stats = TraceStats::compute(&trace());
        assert_eq!(stats.pair_count(NodeId(1), NodeId(100)), 3);
        assert_eq!(stats.pair_count(NodeId(2), NodeId(100)), 1);
        assert_eq!(stats.pair_count(NodeId(9), NodeId(100)), 0);
        assert_eq!(stats.pairs().count(), 3);
    }

    #[test]
    fn rater_frequencies_for_seller() {
        let t = trace();
        let stats = TraceStats::compute(&t);
        let freqs = stats.rater_frequencies(&t, NodeId(100));
        assert_eq!(freqs.len(), 2);
        assert_eq!(freqs[0].rater, NodeId(1));
        assert_eq!(freqs[0].total, 3);
        assert_eq!(freqs[0].max_per_day, 2); // two ratings on day 0
        assert!((freqs[0].avg_per_day - 0.3).abs() < 1e-12);
        assert_eq!(freqs[1].max_per_day, 1);
    }

    #[test]
    fn rater_summary_statistics() {
        let t = trace();
        let stats = TraceStats::compute(&t);
        let (mean, max, var) = stats.rater_summary(&t, NodeId(100));
        assert_eq!(mean, 2.0);
        assert_eq!(max, 3);
        assert_eq!(var, 1.0);
        let empty = stats.rater_summary(&t, NodeId(999));
        assert_eq!(empty, (0.0, 0, 0.0));
    }

    #[test]
    fn suspicious_sellers_show_higher_variance_on_synthetic_trace() {
        use crate::amazon::{generate, AmazonConfig};
        let at = generate(&AmazonConfig::paper(0.01, 3));
        let stats = TraceStats::compute(&at.trace);
        let colluder = at.colluding_sellers()[0];
        let honest = NodeId(18); // first honest high-reputed seller
        let (_, max_c, var_c) = stats.rater_summary(&at.trace, colluder);
        let (_, max_h, var_h) = stats.rater_summary(&at.trace, honest);
        assert!(max_c > max_h, "colluder max {max_c} !> honest max {max_h}");
        assert!(var_c > var_h, "colluder var {var_c} !> honest var {var_h}");
    }
}
