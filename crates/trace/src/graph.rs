//! The interaction graph of Figure 1(d) and the C5 structure analysis.
//!
//! "If the number of ratings between node i to node j exceeds 20, we drew an
//! edge between the two nodes. … The black nodes on the graph are suspected
//! colluders since they rate each other with high rating frequency. … the
//! suspected colluders rate each other in pairs. There is no closed
//! structure with 3 or more nodes. … The figure has three nodes connecting
//! together, but they are still in a pair-wise manner."
//!
//! [`InteractionGraph`] builds the undirected high-frequency graph and
//! classifies its connected components: isolated **pairs**, acyclic
//! **chains/stars** ("three nodes connecting together … still pair-wise"),
//! and **closed structures** (components containing a cycle — the group
//! collusion the paper never observed, C5).

use crate::model::Trace;
use collusion_reputation::id::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Shape of one connected component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Exactly two nodes joined by one edge — the canonical colluding pair.
    Pair,
    /// Three or more nodes, acyclic (a chain or star): multiple pair-wise
    /// relations sharing a node, still "pair-wise" per the paper.
    Chain,
    /// Contains a cycle of ≥3 nodes — a closed structure / group collusion.
    Closed,
}

/// One connected component of the interaction graph.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Component {
    /// Member nodes, ascending.
    pub nodes: Vec<NodeId>,
    /// Number of (undirected) edges among them.
    pub edges: usize,
    /// Structural classification.
    pub kind: ComponentKind,
}

/// Undirected high-frequency interaction graph.
#[derive(Clone, Debug, Default)]
pub struct InteractionGraph {
    adjacency: BTreeMap<NodeId, BTreeSet<NodeId>>,
    edge_count: usize,
}

impl InteractionGraph {
    /// Build the graph from a trace: an undirected edge joins `i` and `j`
    /// when the ratings between them (both directions combined) exceed
    /// `threshold`.
    pub fn from_trace(trace: &Trace, threshold: u64) -> Self {
        let mut counts: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for r in &trace.records {
            let key = if r.rater < r.ratee { (r.rater, r.ratee) } else { (r.ratee, r.rater) };
            *counts.entry(key).or_default() += 1;
        }
        let mut g = InteractionGraph::default();
        for ((a, b), c) in counts {
            if c > threshold && a != b {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Insert an undirected edge (idempotent).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(a, b, "self-edges are not allowed");
        let inserted = self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        if inserted {
            self.edge_count += 1;
        }
    }

    /// Nodes with at least one edge — the paper's "black nodes"
    /// (suspected colluders).
    pub fn nodes(&self) -> Vec<NodeId> {
        self.adjacency.keys().copied().collect()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of a node (0 when absent).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency.get(&node).map(BTreeSet::len).unwrap_or(0)
    }

    /// Whether `a`–`b` is an edge.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.get(&a).is_some_and(|s| s.contains(&b))
    }

    /// Connected components, each classified; ordered by smallest member.
    pub fn components(&self) -> Vec<Component> {
        let mut visited: BTreeSet<NodeId> = BTreeSet::new();
        let mut out = Vec::new();
        for &start in self.adjacency.keys() {
            if visited.contains(&start) {
                continue;
            }
            // BFS
            let mut stack = vec![start];
            let mut members = BTreeSet::new();
            members.insert(start);
            visited.insert(start);
            while let Some(n) = stack.pop() {
                for &next in &self.adjacency[&n] {
                    if members.insert(next) {
                        visited.insert(next);
                        stack.push(next);
                    }
                }
            }
            let edges = members.iter().map(|n| self.adjacency[n].len()).sum::<usize>() / 2;
            let kind = if members.len() == 2 {
                ComponentKind::Pair
            } else if edges >= members.len() {
                ComponentKind::Closed
            } else {
                ComponentKind::Chain
            };
            out.push(Component { nodes: members.into_iter().collect(), edges, kind });
        }
        out
    }

    /// Number of triangles (3-cycles) in the graph — zero in the paper's
    /// Overstock observation (C5).
    pub fn triangle_count(&self) -> usize {
        let mut triangles = 0;
        for (&a, neigh) in &self.adjacency {
            for &b in neigh.iter().filter(|&&b| b > a) {
                for &c in self.adjacency[&b].iter().filter(|&&c| c > b) {
                    if neigh.contains(&c) {
                        triangles += 1;
                    }
                }
            }
        }
        triangles
    }

    /// Summary counts by component kind: (pairs, chains, closed).
    pub fn structure_census(&self) -> (usize, usize, usize) {
        let mut pairs = 0;
        let mut chains = 0;
        let mut closed = 0;
        for c in self.components() {
            match c.kind {
                ComponentKind::Pair => pairs += 1,
                ComponentKind::Chain => chains += 1,
                ComponentKind::Closed => closed += 1,
            }
        }
        (pairs, chains, closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceRecord;
    use crate::overstock::{generate, OverstockConfig};

    fn n(v: u64) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn edges_require_exceeding_threshold() {
        let mut t = Trace::new(30);
        for d in 0..21u64 {
            t.records.push(TraceRecord { rater: n(1), ratee: n(2), stars: 5, day: d % 30 });
        }
        for d in 0..20u64 {
            t.records.push(TraceRecord { rater: n(3), ratee: n(4), stars: 5, day: d % 30 });
        }
        let g = InteractionGraph::from_trace(&t, 20);
        assert!(g.has_edge(n(1), n(2)));
        assert!(!g.has_edge(n(3), n(4)), "exactly 20 must NOT exceed the threshold");
    }

    #[test]
    fn bidirectional_counts_combine() {
        let mut t = Trace::new(30);
        for d in 0..11u64 {
            t.records.push(TraceRecord { rater: n(1), ratee: n(2), stars: 5, day: d });
            t.records.push(TraceRecord { rater: n(2), ratee: n(1), stars: 5, day: d });
        }
        let g = InteractionGraph::from_trace(&t, 20);
        assert!(g.has_edge(n(1), n(2)), "11+11 combined exceeds 20");
    }

    #[test]
    fn component_kinds() {
        let mut g = InteractionGraph::default();
        // pair
        g.add_edge(n(1), n(2));
        // chain of three ("three nodes connecting together … still pair-wise")
        g.add_edge(n(10), n(11));
        g.add_edge(n(11), n(12));
        // triangle (closed)
        g.add_edge(n(20), n(21));
        g.add_edge(n(21), n(22));
        g.add_edge(n(22), n(20));
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].kind, ComponentKind::Pair);
        assert_eq!(comps[1].kind, ComponentKind::Chain);
        assert_eq!(comps[2].kind, ComponentKind::Closed);
        assert_eq!(g.structure_census(), (1, 1, 1));
        assert_eq!(g.triangle_count(), 1);
    }

    #[test]
    fn degrees_and_counts() {
        let mut g = InteractionGraph::default();
        g.add_edge(n(1), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(1), n(2)); // duplicate ignored
        assert_eq!(g.degree(n(1)), 2);
        assert_eq!(g.degree(n(2)), 1);
        assert_eq!(g.degree(n(9)), 0);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.nodes(), vec![n(1), n(2), n(3)]);
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edge_rejected() {
        let mut g = InteractionGraph::default();
        g.add_edge(n(1), n(1));
    }

    #[test]
    fn figure_1d_pairwise_structure_on_synthetic_overstock() {
        let t = generate(&OverstockConfig::paper(0.01, 17));
        let g = InteractionGraph::from_trace(&t.trace, 20);
        let (pairs, _chains, closed) = g.structure_census();
        assert_eq!(closed, 0, "paper observed no closed structures (C5)");
        assert_eq!(g.triangle_count(), 0);
        assert!(pairs >= 28, "expected ≈30 colluding pairs visible, got {pairs}");
        // every ground-truth pair is an edge
        for &(a, b) in &t.pairs {
            assert!(g.has_edge(a, b), "ground-truth pair ({a},{b}) missing");
        }
    }

    #[test]
    fn injected_groups_show_up_as_closed_structures() {
        let mut cfg = OverstockConfig::paper(0.01, 18);
        cfg.colluding_groups = vec![3, 5];
        let t = generate(&cfg);
        let g = InteractionGraph::from_trace(&t.trace, 20);
        let (_, _, closed) = g.structure_census();
        assert_eq!(closed, 2, "both injected groups must appear closed");
        assert!(g.triangle_count() >= 11, "3-clique has 1 triangle, 5-clique has 10");
    }
}
