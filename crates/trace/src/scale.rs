//! Synthetic scale traces: Amazon-shaped rating streams at 10⁲–10⁵ nodes.
//!
//! The §III marketplace traces top out at a few hundred sellers — enough to
//! validate the detectors' *outputs*, far too small to exercise their
//! *scaling* behaviour. This module generates seeded synthetic workloads
//! with the same gross shape as the crawled data (a heavy-tailed ratee
//! popularity distribution, ~90 % positive background feedback) at any node
//! count, with a known set of planted colluding pairs whose statistics are
//! pinned exactly on the paper's detection thresholds:
//!
//! * each planted colluder receives 30 mutual +1 ratings from its partner
//!   (`N(j,i) = 30 ≥ T_N = 20`, fraction `a = 1.0 ≥ T_a`) and 10 −1 ratings
//!   from 10 distinct community raters (fraction `b = 0 < T_b`, reputation
//!   `R_i = 20 ≥ T_R`), so every planted pair is detected — and nothing
//!   else is frequent enough to be — under `Thresholds::new(1.0, 20, 0.8,
//!   0.2)` and the strict policy;
//! * background ratings never target a colluder, so the planted statistics
//!   stay exact at every scale.
//!
//! Used by the `scale_json` benchmark to measure build/refresh/detect
//! throughput of the monolithic and sharded kernels on identical inputs.

use collusion_reputation::id::{NodeId, SimTime};
use collusion_reputation::rating::{Rating, RatingValue};

/// Parameters of a synthetic scale trace.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Total node population (ids `1..=nodes`).
    pub nodes: u64,
    /// Background ratings issued per node (matrix density knob).
    pub ratings_per_node: u64,
    /// Planted colluding pairs; their members are the trailing
    /// `2 · colluding_pairs` ids.
    pub colluding_pairs: u64,
    /// RNG seed; equal configs generate byte-identical traces.
    pub seed: u64,
}

impl ScaleConfig {
    /// Amazon-shaped defaults at the given population: ~20 background
    /// ratings per node and one planted pair per 100 nodes (minimum 1).
    pub fn at_scale(nodes: u64, seed: u64) -> Self {
        ScaleConfig { nodes, ratings_per_node: 20, colluding_pairs: (nodes / 100).max(1), seed }
    }

    /// Every node id in the population, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (1..=self.nodes).map(NodeId).collect()
    }

    /// The planted colluding pairs `(a, b)`, `a < b`.
    pub fn planted_pairs(&self) -> Vec<(NodeId, NodeId)> {
        let first = self.first_colluder();
        (0..self.colluding_pairs)
            .map(|k| (NodeId(first + 2 * k), NodeId(first + 2 * k + 1)))
            .collect()
    }

    fn first_colluder(&self) -> u64 {
        self.nodes - 2 * self.colluding_pairs + 1
    }

    /// Generate the full trace, time-ordered. Background ratings come
    /// first (one per tick), then the planted collusion and community
    /// pushback, so chunking the stream into equal epochs spreads the
    /// planted evidence across the final epochs.
    ///
    /// # Panics
    /// If the population cannot hold the planted pairs plus 10 distinct
    /// community raters (`nodes < 2·colluding_pairs + 10`).
    pub fn generate(&self) -> Vec<Rating> {
        let first_colluder = self.first_colluder();
        let honest = first_colluder - 1;
        assert!(honest >= 10, "need ≥10 honest nodes for the community raters");
        let mut s = self.seed ^ 0x5ca1_e000_0000_0000;
        let mut out = Vec::with_capacity(
            (self.nodes * self.ratings_per_node) as usize + 70 * self.colluding_pairs as usize,
        );
        let mut t = 0u64;
        for _ in 0..self.nodes * self.ratings_per_node {
            let rater = 1 + splitmix(&mut s) % honest;
            // u² popularity: low ids absorb most ratings (heavy tail)
            let u = (splitmix(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
            let mut ratee = 1 + ((honest as f64) * u * u) as u64;
            if ratee > honest {
                ratee = honest;
            }
            if ratee == rater {
                ratee = 1 + ratee % honest;
                if ratee == rater {
                    continue;
                }
            }
            let v = if splitmix(&mut s).is_multiple_of(10) {
                RatingValue::Negative
            } else {
                RatingValue::Positive
            };
            out.push(Rating::new(NodeId(rater), NodeId(ratee), v, SimTime(t)));
            t += 1;
        }
        for (a, b) in self.planted_pairs() {
            for _ in 0..30 {
                out.push(Rating::positive(a, b, SimTime(t)));
                out.push(Rating::positive(b, a, SimTime(t)));
                t += 1;
            }
            // 10 distinct community raters each file one complaint per
            // colluder: infrequent (below T_N), so they implicate nobody
            let base = splitmix(&mut s) % (honest - 10);
            for k in 0..10 {
                let rater = NodeId(1 + base + k);
                out.push(Rating::negative(rater, a, SimTime(t)));
                out.push(Rating::negative(rater, b, SimTime(t)));
                t += 1;
            }
        }
        out
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use collusion_reputation::history::InteractionHistory;

    #[test]
    fn deterministic_and_self_rating_free() {
        let cfg = ScaleConfig::at_scale(300, 9);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().all(|r| r.rater != r.ratee));
    }

    #[test]
    fn planted_pair_statistics_are_exact() {
        let cfg = ScaleConfig::at_scale(500, 3);
        let mut h = InteractionHistory::new();
        for r in cfg.generate() {
            h.record(r);
        }
        for (a, b) in cfg.planted_pairs() {
            for (x, y) in [(a, b), (b, a)] {
                assert_eq!(h.pair(x, y).total, 30, "partner count {x}->{y}");
                assert_eq!(h.pair(x, y).positive, 30);
                assert_eq!(h.ratings_for(y), 40, "N_i of {y}");
                assert_eq!(h.signed_reputation(y), 20, "R_i of {y}");
            }
        }
    }

    #[test]
    fn background_is_mostly_positive_and_heavy_tailed() {
        let cfg = ScaleConfig::at_scale(1000, 17);
        let ratings = cfg.generate();
        let background: Vec<_> = ratings
            .iter()
            .filter(|r| r.ratee.raw() <= cfg.nodes - 2 * cfg.colluding_pairs)
            .collect();
        let pos = background.iter().filter(|r| r.value == RatingValue::Positive).count();
        let frac = pos as f64 / background.len() as f64;
        assert!(frac > 0.85 && frac < 0.95, "positive fraction {frac}");
        // popularity skew: under u² placement the busiest decile holds
        // √0.1 ≈ 32 % of the mass — over 3× its proportional share
        let mut counts = vec![0u64; cfg.nodes as usize + 1];
        for r in &background {
            counts[r.ratee.raw() as usize] += 1;
        }
        counts.sort_unstable_by(|x, y| y.cmp(x));
        let top: u64 = counts[..cfg.nodes as usize / 10].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(top * 10 > total * 3, "top decile holds {top}/{total}");
    }
}
