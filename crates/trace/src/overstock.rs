//! Synthetic Overstock Auction trace generator — the bidirectional
//! marketplace of Figure 1(d).
//!
//! "We crawled the ratings among approximately 100,000 users with over
//! 450,000 transactions during Oct., 2009 to Sept., 2010." Unlike Amazon,
//! every user can be both seller and buyer, so collusion is visible as
//! mutual high-frequency rating edges. The generator injects pair colluders
//! (the paper's finding — C5) and can optionally inject ≥3-member colluding
//! groups, which the paper observed *never* occur, so the graph analysis can
//! demonstrate both the negative result and the future-work probe.

use crate::model::{Trace, TraceRecord};
use collusion_reputation::id::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverstockConfig {
    /// Number of users (paper: ~100,000).
    pub users: u64,
    /// Number of ordinary transactions (paper: ~450,000).
    pub transactions: u64,
    /// Number of colluding pairs to inject.
    pub colluding_pairs: u64,
    /// Sizes of colluding *groups* (≥3) to inject; empty reproduces the
    /// paper's observation that none exist.
    pub colluding_groups: Vec<u64>,
    /// Mutual ratings per colluding relationship, inclusive range (must
    /// exceed the analysis edge threshold of 20 to be visible).
    pub collusion_ratings: (u64, u64),
    /// Probability an ordinary rating is positive.
    pub positive_rate: f64,
    /// Window length in days.
    pub days: u64,
    /// RNG seed.
    pub seed: u64,
}

impl OverstockConfig {
    /// Paper-calibrated configuration, volume-scaled by `scale`.
    pub fn paper(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        OverstockConfig {
            users: ((100_000.0 * scale) as u64).max(500),
            transactions: ((450_000.0 * scale) as u64).max(2_000),
            colluding_pairs: 30,
            colluding_groups: Vec::new(),
            collusion_ratings: (21, 60),
            positive_rate: 0.9,
            days: 335,
            seed,
        }
    }
}

/// A generated trace plus ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverstockTrace {
    /// The rating records (both directions).
    pub trace: Trace,
    /// Total users.
    pub users: u64,
    /// Ground-truth colluding pairs (ids ascending within a pair).
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Ground-truth colluding groups (member lists).
    pub groups: Vec<Vec<NodeId>>,
}

impl OverstockTrace {
    /// Every ground-truth colluder id, ascending and deduplicated.
    pub fn colluders(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .pairs
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .chain(self.groups.iter().flatten().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Generate the trace described by `config`.
///
/// Colluders take the lowest user ids (pairs first, then groups) so figures
/// are easy to read; ordinary transactions draw uniformly over all users.
pub fn generate(config: &OverstockConfig) -> OverstockTrace {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut trace = Trace::new(config.days);
    let mut next_id = 0u64;
    // Colluding pairs.
    let mut pairs = Vec::with_capacity(config.colluding_pairs as usize);
    for _ in 0..config.colluding_pairs {
        let a = NodeId(next_id);
        let b = NodeId(next_id + 1);
        next_id += 2;
        pairs.push((a, b));
        let (lo, hi) = config.collusion_ratings;
        for (x, y) in [(a, b), (b, a)] {
            let count = rng.random_range(lo..=hi);
            for _ in 0..count {
                trace.records.push(TraceRecord {
                    rater: x,
                    ratee: y,
                    stars: 5,
                    day: rng.random_range(0..config.days),
                });
            }
        }
    }
    // Colluding groups (future-work probe): full mutual cliques.
    let mut groups = Vec::with_capacity(config.colluding_groups.len());
    for &size in &config.colluding_groups {
        assert!(size >= 3, "groups must have ≥3 members (use colluding_pairs for 2)");
        let members: Vec<NodeId> = (0..size)
            .map(|_| {
                let id = NodeId(next_id);
                next_id += 1;
                id
            })
            .collect();
        let (lo, hi) = config.collusion_ratings;
        for (i, &x) in members.iter().enumerate() {
            for &y in &members[i + 1..] {
                for (p, q) in [(x, y), (y, x)] {
                    let count = rng.random_range(lo..=hi);
                    for _ in 0..count {
                        trace.records.push(TraceRecord {
                            rater: p,
                            ratee: q,
                            stars: 5,
                            day: rng.random_range(0..config.days),
                        });
                    }
                }
            }
        }
        groups.push(members);
    }
    assert!(
        next_id <= config.users,
        "colluders ({next_id}) exceed the user pool ({})",
        config.users
    );
    // Ordinary transactions: uniform user pairs, ≈1 rating per pair.
    for _ in 0..config.transactions {
        let rater = NodeId(rng.random_range(0..config.users));
        let mut ratee = NodeId(rng.random_range(0..config.users));
        if ratee == rater {
            ratee = NodeId((ratee.raw() + 1) % config.users);
        }
        let stars = if rng.random_bool(config.positive_rate) {
            if rng.random_bool(0.7) {
                5
            } else {
                4
            }
        } else if rng.random_bool(0.5) {
            1
        } else {
            2
        };
        trace.records.push(TraceRecord {
            rater,
            ratee,
            stars,
            day: rng.random_range(0..config.days),
        });
    }
    OverstockTrace { trace, users: config.users, pairs, groups }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> OverstockConfig {
        OverstockConfig::paper(0.01, 4)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.trace.records, b.trace.records);
    }

    #[test]
    fn pairs_rate_mutually_above_threshold() {
        let t = generate(&small());
        assert_eq!(t.pairs.len(), 30);
        for &(a, b) in &t.pairs {
            let ab = t.trace.records.iter().filter(|r| r.rater == a && r.ratee == b).count();
            let ba = t.trace.records.iter().filter(|r| r.rater == b && r.ratee == a).count();
            assert!(ab >= 21, "pair ({a},{b}) only {ab} ratings a→b");
            assert!(ba >= 21, "pair ({a},{b}) only {ba} ratings b→a");
        }
    }

    #[test]
    fn groups_form_full_mutual_cliques() {
        let mut cfg = small();
        cfg.colluding_groups = vec![3, 4];
        let t = generate(&cfg);
        assert_eq!(t.groups.len(), 2);
        for group in &t.groups {
            for &x in group {
                for &y in group {
                    if x != y {
                        let c =
                            t.trace.records.iter().filter(|r| r.rater == x && r.ratee == y).count();
                        assert!(c >= 21, "group edge {x}->{y} only {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn colluders_listed_once_each() {
        let mut cfg = small();
        cfg.colluding_groups = vec![3];
        let t = generate(&cfg);
        let colluders = t.colluders();
        assert_eq!(colluders.len(), 30 * 2 + 3);
        let mut sorted = colluders.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), colluders.len());
    }

    #[test]
    fn no_self_ratings_in_ordinary_traffic() {
        let t = generate(&small());
        assert!(t.trace.records.iter().all(|r| r.rater != r.ratee));
    }

    #[test]
    #[should_panic(expected = "≥3 members")]
    fn two_member_group_rejected() {
        let mut cfg = small();
        cfg.colluding_groups = vec![2];
        let _ = generate(&cfg);
    }

    #[test]
    fn volume_near_configured_transactions() {
        let cfg = small();
        let t = generate(&cfg);
        let min = cfg.transactions as usize;
        assert!(t.trace.len() >= min);
        // collusive extra: ≤ pairs × 2 × 60
        assert!(t.trace.len() <= min + (cfg.colluding_pairs as usize) * 120 + 10);
    }
}
