//! The suspicious-pair filter (§III).
//!
//! "The collected data shows that the average number of transactions of a
//! seller-buyer pair is 1 per year. … we set the suspicious behavior
//! filtering threshold as 20 ratings, which gives us 18 suspicious sellers
//! and 139 suspicious raters."
//!
//! A pair is *suspicious* when one rater submits at least `threshold`
//! ratings for the same seller in the window. Suspicious pairs split into
//! **boosters** (mostly-positive — Figure 1(b) raters 2–3) and **rivals**
//! (mostly-negative — rater 1). The paper's calibration numbers — average
//! `a = 98.37 %` and `b = 1.63 %` — are the mean positive fractions of the
//! booster pairs and the rival pairs respectively, which is how we compute
//! [`SuspiciousReport::avg_a`] / [`SuspiciousReport::avg_b`].

use crate::model::Trace;
use crate::stats::TraceStats;
use collusion_reputation::id::NodeId;
use collusion_reputation::rating::RatingValue;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// One high-frequency rater→seller pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuspiciousPair {
    /// The frequent rater.
    pub rater: NodeId,
    /// The rated seller.
    pub seller: NodeId,
    /// Ratings in the window.
    pub count: u64,
    /// Positive fraction of those ratings.
    pub positive_fraction: f64,
}

impl SuspiciousPair {
    /// Booster = mostly positive; rival = mostly negative.
    pub fn is_booster(&self) -> bool {
        self.positive_fraction >= 0.5
    }
}

/// Outcome of the suspicious filter over a trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SuspiciousReport {
    /// The frequency threshold used (paper: 20/year).
    pub threshold: u64,
    /// All suspicious pairs, ordered by (seller, rater).
    pub pairs: Vec<SuspiciousPair>,
    /// Distinct suspicious sellers, ascending.
    pub sellers: Vec<NodeId>,
    /// Distinct suspicious raters, ascending.
    pub raters: Vec<NodeId>,
    /// Mean positive fraction over booster pairs (paper: 0.9837).
    pub avg_a: f64,
    /// Mean positive fraction over rival pairs (paper: 0.0163).
    pub avg_b: f64,
}

/// Run the filter at `threshold` ratings per window.
pub fn find_suspicious(trace: &Trace, stats: &TraceStats, threshold: u64) -> SuspiciousReport {
    // positive counts per pair above threshold
    let mut positives: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for r in &trace.records {
        if stats.pair_count(r.rater, r.ratee) >= threshold && r.value() == RatingValue::Positive {
            *positives.entry((r.rater, r.ratee)).or_default() += 1;
        }
    }
    let mut pairs: Vec<SuspiciousPair> = stats
        .pairs()
        .filter(|&(_, _, c)| c >= threshold)
        .map(|(rater, seller, count)| {
            let pos = positives.get(&(rater, seller)).copied().unwrap_or(0);
            SuspiciousPair { rater, seller, count, positive_fraction: pos as f64 / count as f64 }
        })
        .collect();
    pairs.sort_by_key(|p| (p.seller, p.rater));
    let sellers: BTreeSet<NodeId> = pairs.iter().map(|p| p.seller).collect();
    let raters: BTreeSet<NodeId> = pairs.iter().map(|p| p.rater).collect();
    let boosters: Vec<f64> =
        pairs.iter().filter(|p| p.is_booster()).map(|p| p.positive_fraction).collect();
    let rivals: Vec<f64> =
        pairs.iter().filter(|p| !p.is_booster()).map(|p| p.positive_fraction).collect();
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    SuspiciousReport {
        threshold,
        avg_a: mean(&boosters),
        avg_b: mean(&rivals),
        pairs,
        sellers: sellers.into_iter().collect(),
        raters: raters.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amazon::{generate, AmazonConfig};
    use crate::model::TraceRecord;

    #[test]
    fn filter_finds_injected_boosters_and_rivals() {
        let at = generate(&AmazonConfig::paper(0.01, 11));
        let stats = TraceStats::compute(&at.trace);
        let report = find_suspicious(&at.trace, &stats, 20);
        // every ground-truth colluding seller must be suspicious
        let found: BTreeSet<NodeId> = report.sellers.iter().copied().collect();
        for seller in at.colluding_sellers() {
            assert!(found.contains(&seller), "missed colluding seller {seller}");
        }
        // rater counts near ground truth (boosters with draw ≥ threshold)
        assert!(report.raters.len() >= 100, "only {} suspicious raters found", report.raters.len());
    }

    #[test]
    fn calibration_fractions_match_paper_shape() {
        let at = generate(&AmazonConfig::paper(0.02, 5));
        let stats = TraceStats::compute(&at.trace);
        let report = find_suspicious(&at.trace, &stats, 20);
        assert!(report.avg_a > 0.95, "avg a = {} (paper: 0.9837)", report.avg_a);
        assert!(report.avg_b < 0.05, "avg b = {} (paper: 0.0163)", report.avg_b);
    }

    #[test]
    fn no_normal_buyer_is_suspicious() {
        let at = generate(&AmazonConfig::paper(0.01, 11));
        let stats = TraceStats::compute(&at.trace);
        let report = find_suspicious(&at.trace, &stats, 20);
        let truth: BTreeSet<NodeId> =
            at.boosters.iter().map(|&(b, _)| b).chain(at.rivals.iter().map(|&(r, _)| r)).collect();
        for rater in &report.raters {
            assert!(truth.contains(rater), "normal buyer {rater} flagged as suspicious");
        }
    }

    #[test]
    fn threshold_monotonicity() {
        let at = generate(&AmazonConfig::paper(0.01, 9));
        let stats = TraceStats::compute(&at.trace);
        let lo = find_suspicious(&at.trace, &stats, 15);
        let hi = find_suspicious(&at.trace, &stats, 40);
        assert!(lo.pairs.len() >= hi.pairs.len());
        assert!(lo.sellers.len() >= hi.sellers.len());
    }

    #[test]
    fn booster_rival_split() {
        let mut t = Trace::new(30);
        for d in 0..25u64 {
            t.records.push(TraceRecord { rater: NodeId(1), ratee: NodeId(9), stars: 5, day: d });
            t.records.push(TraceRecord { rater: NodeId(2), ratee: NodeId(9), stars: 1, day: d });
        }
        let stats = TraceStats::compute(&t);
        let report = find_suspicious(&t, &stats, 20);
        assert_eq!(report.pairs.len(), 2);
        assert!(report.pairs.iter().find(|p| p.rater == NodeId(1)).unwrap().is_booster());
        assert!(!report.pairs.iter().find(|p| p.rater == NodeId(2)).unwrap().is_booster());
        assert_eq!(report.avg_a, 1.0);
        assert_eq!(report.avg_b, 0.0);
        assert_eq!(report.sellers, vec![NodeId(9)]);
        assert_eq!(report.raters, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let t = Trace::new(10);
        let stats = TraceStats::compute(&t);
        let report = find_suspicious(&t, &stats, 20);
        assert!(report.pairs.is_empty());
        assert_eq!(report.avg_a, 0.0);
        assert_eq!(report.avg_b, 0.0);
    }
}
