//! Trace records: the raw crawled-data format.
//!
//! A [`TraceRecord`] mirrors one row of the paper's crawl: who rated whom,
//! the 1–5 star score, and the day it happened. A [`Trace`] is a full
//! year-long crawl; it converts losslessly into the reputation crate's
//! [`RatingLog`] (stars collapse to −1/0/+1 exactly as §III specifies).

use collusion_reputation::id::{NodeId, SimTime};
use collusion_reputation::rating::{Rating, RatingLog, RatingValue};
use serde::{Deserialize, Serialize};

/// One crawled rating row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The buyer submitting the rating.
    pub rater: NodeId,
    /// The seller being rated.
    pub ratee: NodeId,
    /// Star score, 1–5 (Amazon scale).
    pub stars: u8,
    /// Day offset within the crawl window.
    pub day: u64,
}

impl TraceRecord {
    /// The tri-valued classification of the star score.
    pub fn value(&self) -> RatingValue {
        RatingValue::from_amazon_stars(self.stars)
    }

    /// Convert into a reputation-system rating (day becomes the tick).
    pub fn to_rating(&self) -> Rating {
        Rating::new(self.rater, self.ratee, self.value(), SimTime(self.day))
    }
}

/// A complete crawl: records plus the covered day span.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    /// All records, in generation order.
    pub records: Vec<TraceRecord>,
    /// Number of days the crawl covers (the paper's window is ~351 days).
    pub days: u64,
}

impl Trace {
    /// Empty trace over a day span.
    pub fn new(days: u64) -> Self {
        Trace { records: Vec::new(), days }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Convert to a [`RatingLog`] (self-ratings, if any, are dropped).
    pub fn to_rating_log(&self) -> RatingLog {
        let mut log = RatingLog::with_capacity(self.records.len());
        for r in &self.records {
            log.push(r.to_rating());
        }
        log
    }

    /// Records concerning one seller.
    pub fn received_by(&self, seller: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.ratee == seller)
    }

    /// Records issued by one rater.
    pub fn issued_by(&self, rater: NodeId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.rater == rater)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_classification_through_record() {
        let r = TraceRecord { rater: NodeId(1), ratee: NodeId(2), stars: 5, day: 3 };
        assert_eq!(r.value(), RatingValue::Positive);
        let rating = r.to_rating();
        assert_eq!(rating.rater, NodeId(1));
        assert_eq!(rating.time, SimTime(3));
        assert_eq!(rating.value, RatingValue::Positive);
    }

    #[test]
    fn trace_to_rating_log_preserves_count() {
        let mut t = Trace::new(10);
        t.records.push(TraceRecord { rater: NodeId(1), ratee: NodeId(2), stars: 1, day: 0 });
        t.records.push(TraceRecord { rater: NodeId(3), ratee: NodeId(2), stars: 3, day: 1 });
        let log = t.to_rating_log();
        assert_eq!(log.len(), 2);
        let h = log.history();
        assert_eq!(h.negative_from_to(NodeId(1), NodeId(2)), 1);
        assert_eq!(h.pair(NodeId(3), NodeId(2)).neutral(), 1);
    }

    #[test]
    fn views_filter_by_party() {
        let mut t = Trace::new(10);
        t.records.push(TraceRecord { rater: NodeId(1), ratee: NodeId(2), stars: 5, day: 0 });
        t.records.push(TraceRecord { rater: NodeId(1), ratee: NodeId(3), stars: 4, day: 1 });
        t.records.push(TraceRecord { rater: NodeId(4), ratee: NodeId(2), stars: 2, day: 2 });
        assert_eq!(t.received_by(NodeId(2)).count(), 2);
        assert_eq!(t.issued_by(NodeId(1)).count(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 3);
    }
}
