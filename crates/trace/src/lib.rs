//! Synthetic Amazon / Overstock transaction traces and their analysis.
//!
//! §III of the paper analyzes ~2.1 M Amazon book-seller ratings and ~450 k
//! Overstock Auction ratings to establish the five collusion characteristics
//! C1–C5. The crawled traces are not public, so — per the substitution table
//! in `DESIGN.md` — this crate generates synthetic traces *calibrated to the
//! published statistics* and re-runs the paper's entire analysis pipeline on
//! them:
//!
//! * [`amazon`] — 97 book sellers across the reputation levels of Figure
//!   1(a), ~2.1 M ratings/year at full scale, with 18 colluding sellers
//!   boosted by dedicated rater accounts (≈139 suspicious raters) and
//!   harassed by rival raters, reproducing Figures 1(a)–(c);
//! * [`overstock`] — a bidirectional marketplace trace with injected
//!   colluding pairs (and, optionally, ≥3-groups for the future-work probe),
//!   reproducing Figure 1(d);
//! * [`stats`] — per-seller rating totals, per-rater frequency statistics
//!   (avg/max per day), the rating-vs-reputation table;
//! * [`suspicious`] — the threshold-20 suspicious-pair filter and the
//!   `a`/`b` fraction calibration (paper: avg `a = 98.37 %`, `b = 1.63 %`);
//! * [`patterns`] — per-rater rating timelines and the booster / rival /
//!   normal behaviour classification of Figure 1(b);
//! * [`graph`] — the interaction graph of Figure 1(d) with pair / chain /
//!   closed-structure classification verifying C5.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod amazon;
pub mod graph;
pub mod model;
pub mod overstock;
pub mod patterns;
pub mod scale;
pub mod stats;
pub mod suspicious;

/// Re-exports of the commonly used types.
pub mod prelude {
    pub use crate::amazon::{AmazonConfig, AmazonTrace, SellerSpec};
    pub use crate::graph::{ComponentKind, InteractionGraph};
    pub use crate::model::{Trace, TraceRecord};
    pub use crate::overstock::{OverstockConfig, OverstockTrace};
    pub use crate::patterns::{classify_rater, RaterPattern};
    pub use crate::scale::ScaleConfig;
    pub use crate::stats::{RaterFrequency, SellerStats, TraceStats};
    pub use crate::suspicious::{SuspiciousPair, SuspiciousReport};
}
