//! Synthetic Amazon book-seller trace generator.
//!
//! Calibrated to the crawl described in §III: 97 book sellers, ~2.1 M
//! ratings over the Apr 2009 – Apr 2010 window (351 days), seller
//! reputation levels spanning 0.67–0.98 (Figure 1a), an average of one
//! rating per seller–buyer pair per year for normal buyers (max ≈15), and
//! 18 suspicious sellers boosted by dedicated rater accounts submitting
//! 20–55 ratings/year of score 5 (Figure 1b raters 2–3) plus rival raters
//! submitting score 1 repeatedly (Figure 1b rater 1).
//!
//! Seller ids are `0..sellers.len()`, normal buyers follow, then boosters
//! and rivals — the generator returns the ground-truth assignments so the
//! analysis pipeline can be validated exactly.
//!
//! Generation is deterministic in the config seed and data-parallel per
//! seller (rayon), concatenated in seller order.

use crate::model::{Trace, TraceRecord};
use collusion_reputation::id::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One seller's generation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SellerSpec {
    /// Probability that an *organic* (non-collusive) rating is positive.
    /// Colluding sellers' published reputation ends up slightly above this
    /// thanks to booster ratings.
    pub organic_positive_rate: f64,
    /// Ratings received per year, including collusive ones.
    pub annual_ratings: u64,
    /// Whether this seller colludes with booster raters.
    pub colluding: bool,
}

/// Generator configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AmazonConfig {
    /// Sellers, in id order (seller id = index).
    pub sellers: Vec<SellerSpec>,
    /// Number of distinct normal buyer accounts.
    pub buyer_pool: u64,
    /// Crawl window in days.
    pub days: u64,
    /// Dedicated booster raters per colluding seller (paper: ≈139 raters
    /// over 18 sellers ≈ 8 each).
    pub boosters_per_colluder: u64,
    /// Booster ratings per year, inclusive range (paper: up to 55).
    pub booster_ratings: (u64, u64),
    /// Rival raters per colluding seller (Figure 1b shows one).
    pub rivals_per_colluder: u64,
    /// Rival ratings per year, inclusive range.
    pub rival_ratings: (u64, u64),
    /// Probability an organic rating is neutral (3 stars).
    pub neutral_prob: f64,
    /// RNG seed; every derived stream is seeded from this.
    pub seed: u64,
}

impl AmazonConfig {
    /// The paper-calibrated 97-seller configuration, volume-scaled by
    /// `scale` (1.0 ≈ 2 M ratings; use 0.01–0.1 for tests).
    pub fn paper(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let mut sellers = Vec::with_capacity(97);
        let vol = |v: u64| ((v as f64 * scale) as u64).max(60);
        // 18 colluding sellers: organic ≈0.93, boosted toward 0.94–0.97
        for k in 0..18 {
            sellers.push(SellerSpec {
                organic_positive_rate: 0.92 + 0.002 * (k % 5) as f64,
                annual_ratings: vol(24_000 + 500 * (k % 7)),
                colluding: true,
            });
        }
        // 12 honest high-reputed sellers (0.95–0.98)
        for k in 0..12 {
            sellers.push(SellerSpec {
                organic_positive_rate: 0.95 + 0.01 * (k % 4) as f64,
                annual_ratings: vol(28_000 + 1_000 * (k % 8)),
                colluding: false,
            });
        }
        // 40 median sellers (0.88–0.91)
        for k in 0..40 {
            sellers.push(SellerSpec {
                organic_positive_rate: 0.88 + 0.01 * (k % 4) as f64,
                annual_ratings: vol(12_000 + 800 * (k % 10)),
                colluding: false,
            });
        }
        // 27 low-reputed sellers (0.67–0.83)
        for k in 0..27 {
            sellers.push(SellerSpec {
                organic_positive_rate: 0.67 + 0.02 * (k % 9) as f64,
                annual_ratings: vol(2_000 + 500 * (k % 8)),
                colluding: false,
            });
        }
        AmazonConfig {
            sellers,
            buyer_pool: ((50_000.0 * scale) as u64).max(2_000),
            days: 351,
            boosters_per_colluder: 8,
            booster_ratings: (20, 55),
            rivals_per_colluder: 1,
            rival_ratings: (20, 40),
            neutral_prob: 0.02,
            seed,
        }
    }

    /// Total colluding sellers in the config.
    pub fn colluder_count(&self) -> usize {
        self.sellers.iter().filter(|s| s.colluding).count()
    }
}

/// A generated trace plus its ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AmazonTrace {
    /// The rating records.
    pub trace: Trace,
    /// Seller specs, indexed by seller id.
    pub sellers: Vec<SellerSpec>,
    /// Ground truth: (booster rater, colluding seller) assignments.
    pub boosters: Vec<(NodeId, NodeId)>,
    /// Ground truth: (rival rater, targeted seller) assignments.
    pub rivals: Vec<(NodeId, NodeId)>,
}

impl AmazonTrace {
    /// Seller ids, `0..sellers.len()`.
    pub fn seller_ids(&self) -> Vec<NodeId> {
        (0..self.sellers.len() as u64).map(NodeId).collect()
    }

    /// Ids of the ground-truth colluding sellers.
    pub fn colluding_sellers(&self) -> Vec<NodeId> {
        self.sellers
            .iter()
            .enumerate()
            .filter(|(_, s)| s.colluding)
            .map(|(i, _)| NodeId(i as u64))
            .collect()
    }
}

/// Generate the trace described by `config`.
pub fn generate(config: &AmazonConfig) -> AmazonTrace {
    let n_sellers = config.sellers.len() as u64;
    let buyer_base = n_sellers;
    let special_base = buyer_base + config.buyer_pool;
    // Pre-assign booster/rival ids per colluding seller, in seller order.
    let mut boosters: Vec<(NodeId, NodeId)> = Vec::new();
    let mut rivals: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next_special = special_base;
    let mut seller_specials: Vec<(Vec<NodeId>, Vec<NodeId>)> =
        Vec::with_capacity(config.sellers.len());
    for (sid, spec) in config.sellers.iter().enumerate() {
        let seller = NodeId(sid as u64);
        let mut b = Vec::new();
        let mut r = Vec::new();
        if spec.colluding {
            for _ in 0..config.boosters_per_colluder {
                let id = NodeId(next_special);
                next_special += 1;
                b.push(id);
                boosters.push((id, seller));
            }
            for _ in 0..config.rivals_per_colluder {
                let id = NodeId(next_special);
                next_special += 1;
                r.push(id);
                rivals.push((id, seller));
            }
        }
        seller_specials.push((b, r));
    }

    // Per-seller generation, parallel and deterministic.
    let per_seller: Vec<Vec<TraceRecord>> = config
        .sellers
        .par_iter()
        .enumerate()
        .map(|(sid, spec)| {
            let seller = NodeId(sid as u64);
            let mut rng = SmallRng::seed_from_u64(
                config.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(sid as u64 + 1)),
            );
            let mut records = Vec::with_capacity(spec.annual_ratings as usize + 128);
            let (ref bs, ref rs) = seller_specials[sid];
            let mut special_total = 0u64;
            for &b in bs {
                let count = rng.random_range(config.booster_ratings.0..=config.booster_ratings.1);
                for _ in 0..count {
                    records.push(TraceRecord {
                        rater: b,
                        ratee: seller,
                        stars: 5,
                        day: rng.random_range(0..config.days),
                    });
                }
                special_total += count;
            }
            for &r in rs {
                let count = rng.random_range(config.rival_ratings.0..=config.rival_ratings.1);
                for _ in 0..count {
                    records.push(TraceRecord {
                        rater: r,
                        ratee: seller,
                        stars: 1,
                        day: rng.random_range(0..config.days),
                    });
                }
                special_total += count;
            }
            let organic = spec.annual_ratings.saturating_sub(special_total);
            for _ in 0..organic {
                let buyer = NodeId(buyer_base + rng.random_range(0..config.buyer_pool));
                let roll: f64 = rng.random();
                let stars = if roll < config.neutral_prob {
                    3
                } else if rng.random_bool(spec.organic_positive_rate) {
                    if rng.random_bool(0.7) {
                        5
                    } else {
                        4
                    }
                } else if rng.random_bool(0.6) {
                    1
                } else {
                    2
                };
                records.push(TraceRecord {
                    rater: buyer,
                    ratee: seller,
                    stars,
                    day: rng.random_range(0..config.days),
                });
            }
            records
        })
        .collect();

    let mut trace = Trace::new(config.days);
    trace.records.reserve(per_seller.iter().map(Vec::len).sum());
    for recs in per_seller {
        trace.records.extend(recs);
    }
    AmazonTrace { trace, sellers: config.sellers.clone(), boosters, rivals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collusion_reputation::rating::RatingValue;

    fn small() -> AmazonTrace {
        generate(&AmazonConfig::paper(0.01, 42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&AmazonConfig::paper(0.01, 7));
        let b = generate(&AmazonConfig::paper(0.01, 7));
        assert_eq!(a.trace.records, b.trace.records);
        let c = generate(&AmazonConfig::paper(0.01, 8));
        assert_ne!(a.trace.records, c.trace.records);
    }

    #[test]
    fn paper_config_has_97_sellers_and_18_colluders() {
        let cfg = AmazonConfig::paper(1.0, 0);
        assert_eq!(cfg.sellers.len(), 97);
        assert_eq!(cfg.colluder_count(), 18);
        // 18 × 8 boosters = 144 suspicious raters ≈ the paper's 139
        let t = generate(&AmazonConfig::paper(0.01, 0));
        assert_eq!(t.boosters.len(), 144);
        assert_eq!(t.rivals.len(), 18);
    }

    #[test]
    fn volume_scales_roughly_linearly() {
        let small = generate(&AmazonConfig::paper(0.01, 1)).trace.len() as f64;
        let big = generate(&AmazonConfig::paper(0.02, 1)).trace.len() as f64;
        let ratio = big / small;
        assert!((1.6..=2.4).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn full_scale_volume_near_two_million() {
        let cfg = AmazonConfig::paper(1.0, 0);
        let expected: u64 = cfg.sellers.iter().map(|s| s.annual_ratings).sum();
        assert!(
            (1_500_000..=2_600_000).contains(&expected),
            "full-scale volume {expected} not ≈2.1M"
        );
    }

    #[test]
    fn colluding_sellers_receive_booster_fives() {
        let t = small();
        let colluders = t.colluding_sellers();
        assert_eq!(colluders.len(), 18);
        let (booster, seller) = t.boosters[0];
        let count =
            t.trace.records.iter().filter(|r| r.rater == booster && r.ratee == seller).count()
                as u64;
        assert!((20..=55).contains(&count), "booster count {count}");
        assert!(t.trace.records.iter().filter(|r| r.rater == booster).all(|r| r.stars == 5));
    }

    #[test]
    fn rivals_submit_only_ones() {
        let t = small();
        let (rival, seller) = t.rivals[0];
        let ratings: Vec<&TraceRecord> =
            t.trace.records.iter().filter(|r| r.rater == rival).collect();
        assert!(ratings.len() >= 20);
        assert!(ratings.iter().all(|r| r.stars == 1 && r.ratee == seller));
    }

    #[test]
    fn organic_positive_rate_is_respected() {
        let t = small();
        // pick an honest high-reputed seller (id 18 = first honest)
        let seller = NodeId(18);
        let spec = t.sellers[18];
        assert!(!spec.colluding);
        let (mut pos, mut tot) = (0u64, 0u64);
        for r in t.trace.received_by(seller) {
            tot += 1;
            if r.value() == RatingValue::Positive {
                pos += 1;
            }
        }
        let frac = pos as f64 / tot as f64;
        assert!(
            (frac - spec.organic_positive_rate).abs() < 0.05,
            "positive fraction {frac} vs target {}",
            spec.organic_positive_rate
        );
    }

    #[test]
    fn normal_pair_frequency_stays_low() {
        let t = small();
        // count per (buyer, seller) pair among non-special raters
        use std::collections::HashMap;
        let special: std::collections::HashSet<NodeId> =
            t.boosters.iter().map(|&(b, _)| b).chain(t.rivals.iter().map(|&(r, _)| r)).collect();
        let mut counts: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for r in &t.trace.records {
            if !special.contains(&r.rater) {
                *counts.entry((r.rater, r.ratee)).or_default() += 1;
            }
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max < 20, "a normal pair reached {max} ratings — would trip the filter");
        let avg = counts.values().sum::<u64>() as f64 / counts.len() as f64;
        assert!(avg < 3.0, "normal pair average {avg} too high (paper: ≈1)");
    }

    #[test]
    fn day_stamps_within_window() {
        let t = small();
        assert!(t.trace.records.iter().all(|r| r.day < t.trace.days));
        assert_eq!(t.trace.days, 351);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = AmazonConfig::paper(0.0, 0);
    }
}
