//! Group collusion (Sybil-style collectives) — the paper's future work
//! (§VI) made concrete.
//!
//! ```text
//! cargo run --release --example group_collusion -- [group_size] [seed]
//! ```
//!
//! A collective of `k ≥ 3` nodes spreads its mutual boosting across all
//! `k·(k−1)` ordered pairs, keeping each *pair's* rating frequency low.
//! This demo shows:
//!
//! 1. the §IV pair detector stays blind while per-pair counts sit below
//!    `T_N`,
//! 2. the group detector ([`collusion::core::group`]) finds the collective
//!    from the mutual-boost graph and the lifted C2 community test,
//! 3. inside the full P2P simulation, the `GroupAware` detector zeroes the
//!    entire collective.

use collusion::core::group::{GroupDetector, GroupDetectorConfig};
use collusion::core::policy::DetectionPolicy;
use collusion::prelude::*;
use collusion::sim::config::{DetectorKind, SimConfig};
use collusion::sim::engine::Simulation;

fn main() {
    let mut args = std::env::args().skip(1);
    let k: u64 = args.next().map(|s| s.parse().expect("group size")).unwrap_or(5);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2012);
    assert!(k >= 3, "a group needs at least 3 members");

    // --- static history demo ------------------------------------------------
    let mut h = InteractionHistory::new();
    let mut t = 0u64;
    let mut tick = || {
        t += 1;
        SimTime(t)
    };
    // the collective: 12 mutual ratings per ordered pair (below T_N = 20)
    for i in 1..=k {
        for j in 1..=k {
            if i != j {
                for _ in 0..12 {
                    h.record(Rating::positive(NodeId(i), NodeId(j), tick()));
                }
            }
        }
    }
    // community experience with collective members is poor
    for m in 1..=k {
        for r in 0..6u64 {
            h.record(Rating::negative(NodeId(100 + r), NodeId(m), tick()));
        }
    }
    // honest background
    for r in 0..6u64 {
        for s in 0..6u64 {
            if r != s {
                h.record(Rating::positive(NodeId(100 + r), NodeId(100 + s), tick()));
            }
        }
    }
    let mut nodes: Vec<NodeId> = (1..=k).map(NodeId).collect();
    nodes.extend((100..106).map(NodeId));
    let input = DetectionInput::from_signed_history(&h, &nodes);
    let thresholds = Thresholds::new(1.0, 20, 0.8, 0.2);

    let pair_report =
        OptimizedDetector::with_policy(thresholds, DetectionPolicy::EXTENDED).detect(&input);
    println!(
        "pair detector (T_N = 20, per-pair count 12): {} pairs found — structurally blind",
        pair_report.pairs.len()
    );

    let group_report =
        GroupDetector::new(GroupDetectorConfig { thresholds, t_g: 20 }).detect(&input);
    for g in &group_report.groups {
        println!(
            "group detector: collective {:?} — {} internal edges, {} internal ratings, \
             community fraction {:.1}%{}",
            g.members.iter().map(|m| m.raw()).collect::<Vec<_>>(),
            g.internal_edges,
            g.internal_ratings,
            g.community_fraction * 100.0,
            if g.is_closed() { " (closed structure)" } else { "" }
        );
    }
    assert_eq!(group_report.groups.len(), 1);
    assert_eq!(group_report.groups[0].members.len(), k as usize);

    // --- full simulation demo -----------------------------------------------
    println!("\nfull P2P simulation with a {k}-member collective (GroupAware detector):");
    let mut cfg = SimConfig::paper_baseline(seed);
    cfg.colluders = Vec::new();
    cfg.colluding_groups = vec![(4..4 + k).map(NodeId).collect()];
    cfg.colluder_good_prob = 0.2;
    cfg.detector = DetectorKind::GroupAware;
    cfg.sim_cycles = 10;
    let m = Simulation::new(cfg).run();
    let detected: Vec<u64> = m.detected.iter().map(|n| n.raw()).collect();
    println!("detected collective members: {detected:?}");
    println!("requests served by the collective: {:.2}%", m.fraction_to_colluders() * 100.0);
    for id in 4..4 + k {
        assert!(m.detected.contains(&NodeId(id)), "member n{id} escaped");
    }
    println!("entire collective neutralized ✓");
}
