//! Threshold tuning — the paper's stated future work (§VI).
//!
//! ```text
//! cargo run --release --example threshold_tuning -- [scale] [seed]
//! ```
//!
//! Sweeps `(T_a, T_b, T_N)` over a marketplace trace with known ground
//! truth and prints the precision/recall frontier, demonstrating the
//! trade-off §IV.B describes: "If we want to reduce the false negatives …
//! we can decrease T_a and increase T_b. On the other hand, if we want to
//! reduce the number of false positives … we can increase T_a and decrease
//! T_b."
//!
//! The trace instantiates the §IV collusion model directly: colluding
//! sellers deliver genuinely poor service (organic positive rate 15%, so C2
//! holds) and are kept afloat by booster accounts; detection runs with the
//! extended one-directional policy since marketplace sellers never rate
//! their boosters back.

use collusion::core::policy::DetectionPolicy;
use collusion::core::sweep::{best_f1, sweep_thresholds};
use collusion::prelude::*;
use collusion::trace::amazon::{self, AmazonConfig, SellerSpec};

fn config(scale: f64, seed: u64) -> AmazonConfig {
    let mut cfg = AmazonConfig::paper(scale, seed);
    // Instantiate the collusion model: colluders offer low QoS (C2, organic
    // positive rate p = 0.25) and owe their standing to boosters. With a
    // boost fraction β of a colluder's volume, its signed reputation per
    // rating is β + (1−β)(2p−1); β = 0.5 keeps it comfortably positive
    // (+0.25/rating) at any scale, so the C1 filter always applies.
    cfg.sellers = Vec::new();
    let vol = |v: u64| ((v as f64 * scale) as u64).max(400);
    let colluder_annual = vol(40_000);
    for k in 0..12 {
        cfg.sellers.push(SellerSpec {
            organic_positive_rate: 0.25,
            annual_ratings: colluder_annual + 10 * (k % 5),
            colluding: true,
        });
    }
    for k in 0..60 {
        cfg.sellers.push(SellerSpec {
            organic_positive_rate: 0.75 + 0.002 * (k % 12) as f64,
            annual_ratings: vol(10_000 + 700 * (k % 9)),
            colluding: false,
        });
    }
    // β = 0.5: boosters cover half the volume at ~40 ratings each
    cfg.boosters_per_colluder = (colluder_annual / 80).max(4);
    cfg.booster_ratings = (25, 55);
    cfg
}

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map(|s| s.parse().expect("scale")).unwrap_or(0.02);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2012);

    let trace = amazon::generate(&config(scale, seed));
    let history = trace.trace.to_rating_log().history();
    let mut nodes: Vec<NodeId> = trace.seller_ids();
    nodes.extend(trace.boosters.iter().map(|&(b, _)| b));
    nodes.extend(trace.rivals.iter().map(|&(r, _)| r));
    let input = DetectionInput::from_signed_history(&history, &nodes);
    let truth: Vec<(NodeId, NodeId)> = trace.boosters.clone();

    println!(
        "trace: {} ratings, {} sellers ({} colluding), {} booster relationships\n",
        trace.trace.len(),
        trace.sellers.len(),
        trace.colluding_sellers().len(),
        truth.len()
    );

    // T_R = 0: raters have no seller reputation of their own in a one-sided
    // marketplace, so the C1 filter is left to the seller side.
    let base = Thresholds::new(0.0, 20, 0.8, 0.2);
    let t_a_grid = [0.6, 0.7, 0.8, 0.9, 0.95];
    let t_b_grid = [0.05, 0.1, 0.2, 0.3, 0.5];
    let t_n_grid = [10, 20, 40, 80];
    let points = sweep_thresholds(
        &input,
        base,
        DetectionPolicy::EXTENDED,
        &t_a_grid,
        &t_b_grid,
        &t_n_grid,
        &truth,
    );

    println!("   T_a    T_b   T_N  precision  recall     F1");
    for p in points.iter().filter(|p| p.t_n == 20 && (p.t_b == 0.05 || p.t_b == 0.3)) {
        println!(
            "  {:>4.2}  {:>5.2}  {:>4}  {:>9.3}  {:>6.3}  {:>6.3}",
            p.t_a, p.t_b, p.t_n, p.precision, p.recall, p.f1
        );
    }
    let best = best_f1(&points).expect("non-empty sweep");
    println!(
        "\nbest F1 = {:.3} at T_a={}, T_b={}, T_N={} (precision {:.3}, recall {:.3})",
        best.f1, best.t_a, best.t_b, best.t_n, best.precision, best.recall
    );
    assert!(best.f1 > 0.9, "a well-tuned detector should recover the boosters");

    // Demonstrate the §IV.B knob explicitly.
    let strict = points.iter().find(|p| p.t_a == 0.95 && p.t_b == 0.05 && p.t_n == 20).unwrap();
    let relaxed = points.iter().find(|p| p.t_a == 0.6 && p.t_b == 0.5 && p.t_n == 20).unwrap();
    println!(
        "\nstrict  (T_a=0.95, T_b=0.05): precision {:.3}, recall {:.3}",
        strict.precision, strict.recall
    );
    println!(
        "relaxed (T_a=0.60, T_b=0.50): precision {:.3}, recall {:.3}",
        relaxed.precision, relaxed.recall
    );
    println!("→ relaxing T_a/T_b trades false positives for false negatives, as §IV.B states.");
}
