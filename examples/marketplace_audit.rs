//! Marketplace audit: run the paper's §III analysis pipeline over a
//! year-long synthetic Amazon trace.
//!
//! ```text
//! cargo run --release --example marketplace_audit -- [scale] [seed]
//! ```
//!
//! Generates a calibrated 97-seller trace (18 colluding sellers boosted by
//! dedicated rater accounts), then:
//! 1. tabulates ratings vs reputation (Figure 1a),
//! 2. applies the threshold-20 suspicious-pair filter (§III),
//! 3. classifies the frequent raters of one suspicious seller (Figure 1b),
//! 4. checks the findings against the generator's ground truth.

use collusion::prelude::*;
use collusion::trace::amazon::{self, AmazonConfig};
use collusion::trace::patterns::classify_all_raters;
use collusion::trace::stats::TraceStats;
use collusion::trace::suspicious::find_suspicious;
use std::collections::BTreeSet;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().map(|s| s.parse().expect("scale")).unwrap_or(0.05);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2012);

    println!("generating synthetic Amazon trace (scale {scale}, seed {seed})…");
    let trace = amazon::generate(&AmazonConfig::paper(scale, seed));
    println!(
        "{} ratings for {} sellers over {} days\n",
        trace.trace.len(),
        trace.sellers.len(),
        trace.trace.days
    );

    // Figure 1(a): rating volume follows reputation.
    let stats = TraceStats::compute(&trace.trace);
    println!("top/bottom sellers by reputation (Figure 1a):");
    let ordered = stats.by_reputation_desc();
    for s in ordered.iter().take(5).chain(ordered.iter().rev().take(3).rev()) {
        println!(
            "  {}: {:.1}% reputation, {} ratings ({} pos / {} neg)",
            s.seller,
            s.reputation() * 100.0,
            s.total,
            s.positive,
            s.negative
        );
    }

    // §III: the suspicious filter at threshold 20/year.
    let report = find_suspicious(&trace.trace, &stats, 20);
    println!(
        "\nsuspicious filter (≥20 ratings/pair/year): {} sellers, {} raters",
        report.sellers.len(),
        report.raters.len()
    );
    println!("  booster pairs average a = {:.2}% (paper: 98.37%)", report.avg_a * 100.0);
    println!("  rival pairs average  b = {:.2}% (paper: 1.63%)", report.avg_b * 100.0);

    // Figure 1(b): rater behaviour at one suspicious seller.
    let suspect = report.sellers[0];
    println!("\nfrequent raters of suspicious seller {suspect} (Figure 1b):");
    for (rater, count, pattern) in classify_all_raters(&trace.trace, suspect, 15, 0.1) {
        println!("  {rater}: {count} ratings — {pattern:?}");
    }

    // Validate against ground truth.
    let truth: BTreeSet<NodeId> = trace.colluding_sellers().into_iter().collect();
    let found: BTreeSet<NodeId> = report.sellers.iter().copied().collect();
    let missed: Vec<&NodeId> = truth.difference(&found).collect();
    let false_pos: Vec<&NodeId> = found.difference(&truth).collect();
    println!(
        "\nground truth: {} colluding sellers — missed {:?}, false positives {:?}",
        truth.len(),
        missed,
        false_pos
    );
    assert!(missed.is_empty(), "audit must find every injected colluding seller");
}
