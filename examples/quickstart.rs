//! Quickstart: detect a colluding pair in a hand-built rating history.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the paper's collusion model by hand — two nodes frequently rating
//! each other +1 (C3/C4) while the community rates them −1 (C2) — and runs
//! both detectors, printing the evidence each one gathered.

use collusion::prelude::*;

fn main() {
    // 1. Record a period of ratings.
    let mut history = InteractionHistory::new();
    let colluder_a = NodeId(1);
    let colluder_b = NodeId(2);
    let honest = NodeId(3);

    let mut t = 0u64;
    let mut tick = || {
        t += 1;
        SimTime(t)
    };

    // The colluders boost each other 30 times (paper trace: up to 55/year
    // vs ≤15/year for normal pairs).
    for _ in 0..30 {
        history.record(Rating::positive(colluder_a, colluder_b, tick()));
        history.record(Rating::positive(colluder_b, colluder_a, tick()));
    }
    // The community's actual experience with them is poor…
    for k in 0..8u64 {
        history.record(Rating::negative(NodeId(10 + k), colluder_a, tick()));
        history.record(Rating::negative(NodeId(10 + k), colluder_b, tick()));
    }
    // …while the honest node earns genuine praise.
    for k in 0..10u64 {
        history.record(Rating::positive(NodeId(10 + k % 8), honest, tick()));
    }

    // 2. Build the manager's view: nodes + reputations (signed sums here).
    let nodes: Vec<NodeId> = (1..=3).chain(10..18).map(NodeId).collect();
    let input = DetectionInput::from_signed_history(&history, &nodes);
    for &node in &[colluder_a, colluder_b, honest] {
        println!(
            "{node}: reputation {:+}, received {} ratings",
            input.signed_reputation(node),
            history.ratings_for(node)
        );
    }

    // 3. Run both detectors with trace-calibrated thresholds.
    let thresholds = Thresholds::new(1.0, 20, 0.8, 0.2);
    let basic = BasicDetector::new(thresholds).detect(&input);
    let optimized = OptimizedDetector::new(thresholds).detect(&input);

    println!("\nBasic   (O(m·n²)) found: {:?}", basic.pair_ids());
    println!("Optimized (O(m·n)) found: {:?}", optimized.pair_ids());
    assert_eq!(basic.pair_ids(), optimized.pair_ids());

    // 4. Inspect the evidence.
    for pair in &basic.pairs {
        let fwd = pair.low_boosts_high.expect("mutual detection");
        println!(
            "\npair {pair}: {} ratings from {} for {}, a = {:.1}%, b = {:.1}%",
            fwd.pair_ratings,
            pair.low,
            pair.high,
            fwd.fraction_a.unwrap() * 100.0,
            fwd.fraction_b.unwrap() * 100.0,
        );
    }
    println!(
        "\ncost: basic scanned {} row elements, optimized ran {} O(1) band checks",
        basic.cost.scanned_elements, optimized.cost.band_checks
    );

    // 5. Mitigate: zero the colluders' reputations.
    let mut reputations: std::collections::HashMap<NodeId, f64> =
        nodes.iter().map(|&n| (n, input.reputation_of(n))).collect();
    let zeroed = apply_mitigation(&optimized, &mut reputations);
    println!("zeroed reputations of {zeroed:?}");
    assert!(!zeroed.contains(&honest));
}
