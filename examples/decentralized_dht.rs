//! Decentralized detection over a Chord DHT (§IV's distributed setting,
//! Figure 2).
//!
//! ```text
//! cargo run --release --example decentralized_dht -- [managers] [seed]
//! ```
//!
//! Builds a rating history with three colluding pairs, then runs detection
//! with an increasing number of reputation managers (power nodes) on a
//! Chord ring, showing that the detected pairs never change while the
//! cross-manager confirmation messages and DHT routing hops grow.

use collusion::core::decentralized::{DecentralizedDetector, Method};
use collusion::prelude::*;

fn build_history() -> (InteractionHistory, Vec<NodeId>) {
    let mut h = InteractionHistory::new();
    let mut t = 0u64;
    let mut tick = || {
        t += 1;
        SimTime(t)
    };
    for (a, b) in [(1u64, 2u64), (20, 21), (40, 41)] {
        for _ in 0..30 {
            h.record(Rating::positive(NodeId(a), NodeId(b), tick()));
            h.record(Rating::positive(NodeId(b), NodeId(a), tick()));
        }
        for k in 0..6 {
            h.record(Rating::negative(NodeId(60 + k), NodeId(a), tick()));
            h.record(Rating::negative(NodeId(60 + k), NodeId(b), tick()));
        }
    }
    // honest cross-traffic among the community
    for k in 0..10u64 {
        for l in 0..10u64 {
            if k != l {
                h.record(Rating::positive(NodeId(60 + k), NodeId(60 + l), tick()));
            }
        }
    }
    (h, (1..=70).map(NodeId).collect())
}

fn main() {
    let mut args = std::env::args().skip(1);
    let max_managers: u64 = args.next().map(|s| s.parse().expect("managers")).unwrap_or(32);
    let _seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2012);

    let (history, nodes) = build_history();
    let input = DetectionInput::from_signed_history(&history, &nodes);
    let thresholds = Thresholds::new(1.0, 20, 0.8, 0.2);

    // Centralized reference.
    let central = OptimizedDetector::new(thresholds).detect(&input);
    println!("centralized detection: {:?}\n", central.pair_ids());

    println!("managers  pairs  messages  DHT hops  max load");
    let mut m = 1u64;
    while m <= max_managers {
        let managers: Vec<NodeId> = (1000..1000 + m).map(NodeId).collect();
        let outcome =
            DecentralizedDetector::new(thresholds, Method::Optimized).detect(&input, &managers);
        assert_eq!(
            outcome.report.pair_ids(),
            central.pair_ids(),
            "decentralized result must match centralized"
        );
        let max_load = outcome.load.values().copied().max().unwrap_or(0);
        println!(
            "{m:>8}  {:>5}  {:>8}  {:>8}  {max_load:>8}",
            outcome.report.pairs.len(),
            outcome.messages,
            outcome.dht_hops
        );
        m *= 2;
    }

    // Show the Figure 2 example ring for reference.
    let mut ring = ChordRing::with_bits(4);
    for key in [0u64, 6, 10, 15] {
        ring.join_with_key(Key::new(key, 4));
    }
    println!(
        "\nFigure 2's 4-bit example ring: members {:?}",
        ring.members().map(|k| k.raw()).collect::<Vec<_>>()
    );
    println!("owner of key 10 (n10's trust host): {}", ring.owner(Key::new(10, 4)));
    let router = Router::new(&ring);
    let res = router.lookup(Key::new(6, 4), Key::new(10, 4));
    println!(
        "Lookup(10) from n6 resolves via {:?} in {} hop(s)",
        res.path.iter().map(|k| k.raw()).collect::<Vec<_>>(),
        res.hops
    );
}
