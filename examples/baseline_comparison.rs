//! Related-work baseline comparison (paper §II).
//!
//! ```text
//! cargo run --release --example baseline_comparison -- [runs] [seed]
//! ```
//!
//! Runs the Figure 6 scenario (colluders at B = 0.2) under four regimes and
//! compares how much traffic the colluders capture:
//!
//! * plain weighted EigenTrust (the paper's baseline),
//! * EigenTrust + the Optimized detector (the paper's contribution),
//! * first-hand-only reputation (§II group 1: no rating exchange at all),
//! * canonical EigenTrust power iteration (per-rater normalized trust).
//!
//! It also demonstrates the TrustGuard-style dampened estimator on an
//! oscillation ("milking") attack that plain averages miss.

use collusion::prelude::*;
use collusion::reputation::baselines::{DampenedConfig, DampenedEngine};
use collusion::sim::config::{DetectorKind, ReputationEngine, SimConfig};
use collusion::sim::scenario;

fn run(label: &str, cfg: &SimConfig, runs: usize) -> f64 {
    let m = run_averaged(cfg, runs);
    println!(
        "{label:<34} {:>6.2}% of requests to colluders, {} nodes detected",
        m.fraction_to_colluders * 100.0,
        m.detection_counts.len()
    );
    m.fraction_to_colluders
}

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().map(|s| s.parse().expect("runs")).unwrap_or(5);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2012);

    println!("Figure 6 scenario (B = 0.2), {runs} runs averaged:\n");
    let base = scenario::fig6(seed);
    let eigen = run("weighted EigenTrust (paper)", &base, runs);

    let mut detected = base.clone();
    detected.detector = DetectorKind::Optimized;
    let with_detector = run("EigenTrust + Optimized detector", &detected, runs);

    let mut first_hand = base.clone();
    first_hand.engine = ReputationEngine::FirstHand;
    let fh = run("first-hand only (§II group 1)", &first_hand, runs);

    let mut power = base.clone();
    power.engine = ReputationEngine::PowerIteration(Default::default());
    let pi = run("EigenTrust power iteration", &power, runs);

    println!(
        "\nthe detector and the exchange-free baseline both starve the colluders \
         ({:.2}% / {:.2}% vs {:.2}% under the weighted baseline; \
         per-rater normalization alone gives {:.2}%)",
        with_detector * 100.0,
        fh * 100.0,
        eigen * 100.0,
        pi * 100.0
    );
    assert!(with_detector < 0.1 * eigen);
    assert!(fh < 0.5 * eigen);

    // --- TrustGuard-style dampening vs a milking attack ---------------------
    println!("\nTrustGuard-style dampening vs an oscillation (milking) attack:");
    let engine = DampenedEngine::new(DampenedConfig { alpha: 0.5, fluctuation_penalty: 0.5 });
    let honest = [0.85; 12];
    let milker = [0.95, 0.95, 0.95, 0.95, 0.1, 0.1, 0.95, 0.95, 0.95, 0.95, 0.1, 0.1];
    let plain_mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!(
        "  honest (steady 0.85):   plain mean {:.3}  dampened {:.3}",
        plain_mean(&honest),
        engine.estimate(&honest)
    );
    println!(
        "  milker (oscillating):   plain mean {:.3}  dampened {:.3}",
        plain_mean(&milker),
        engine.estimate(&milker)
    );
    assert!(engine.estimate(&honest) > engine.estimate(&milker) + 0.2);
    println!("  → the dampened estimate separates them; the plain mean barely does.");
}
