//! Full P2P file-sharing simulation: EigenTrust with and without the
//! Optimized collusion detector (the paper's Figures 6 vs 10).
//!
//! ```text
//! cargo run --release --example p2p_file_sharing -- [runs] [seed]
//! ```
//!
//! Runs the 200-node network twice — plain weighted EigenTrust, then
//! EigenTrust+Optimized — with colluders at 20% good behaviour, and prints
//! the resulting reputation distributions and request flows side by side.

use collusion::prelude::*;
use collusion::sim::config::DetectorKind;
use collusion::sim::scenario;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args.next().map(|s| s.parse().expect("runs")).unwrap_or(5);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(2012);

    let plain_cfg = scenario::fig6(seed);
    let protected_cfg = scenario::fig10(seed);
    assert_eq!(plain_cfg.detector, DetectorKind::None);
    assert_eq!(protected_cfg.detector, DetectorKind::Optimized);

    println!(
        "simulating {} nodes, {}×{} cycles, colluders {:?} at B={}, {} runs…\n",
        plain_cfg.n_nodes,
        plain_cfg.sim_cycles,
        plain_cfg.query_cycles,
        plain_cfg.colluders.iter().map(|c| c.raw()).collect::<Vec<_>>(),
        plain_cfg.colluder_good_prob,
        runs
    );
    let plain = run_averaged(&plain_cfg, runs);
    let protected = run_averaged(&protected_cfg, runs);

    println!("node  role        EigenTrust  +Optimized");
    for id in 1..=20u64 {
        let role = if plain_cfg.pretrusted.contains(&NodeId(id)) {
            "pretrusted"
        } else if plain_cfg.colluders.contains(&NodeId(id)) {
            "COLLUDER"
        } else {
            "normal"
        };
        println!(
            "n{id:<4} {role:<11} {:>9.4}  {:>9.4}",
            plain.reputation_of(NodeId(id)),
            protected.reputation_of(NodeId(id))
        );
    }

    println!(
        "\nrequests served by colluders: {:.2}% → {:.2}%",
        plain.fraction_to_colluders * 100.0,
        protected.fraction_to_colluders * 100.0
    );
    let detected: Vec<String> = protected.detection_counts.keys().map(|n| n.to_string()).collect();
    println!("detected colluders: [{}]", detected.join(" "));

    // The paper's headline: every colluder ends at reputation zero.
    for c in &protected_cfg.colluders {
        assert_eq!(protected.reputation_of(*c), 0.0, "colluder {c} should have been zeroed");
    }
    println!("\nall colluders neutralized ✓");
}
