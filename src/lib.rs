//! Umbrella crate for the ICPP 2012 collusion-detection reproduction.
//!
//! Re-exports the five subsystem crates under one roof so applications can
//! depend on a single crate:
//!
//! * [`reputation`] — ratings, interaction history, EigenTrust engines,
//!   reputation managers;
//! * [`dht`] — the Chord DHT simulator backing decentralized managers;
//! * [`core`] — the paper's contribution: the Basic (`O(m·n²)`) and
//!   Optimized (`O(m·n)`) collusion detectors, centralized and
//!   decentralized, with cost metering and threshold sweeps;
//! * [`trace`] — calibrated synthetic Amazon/Overstock traces and the §III
//!   analysis pipeline;
//! * [`sim`] — the §V P2P file-sharing simulator and per-figure scenarios.
//!
//! # Quickstart
//!
//! ```
//! use collusion::prelude::*;
//!
//! // Two colluders boost each other while the community pans them…
//! let mut hist = InteractionHistory::new();
//! for t in 0..30 {
//!     hist.record(Rating::positive(NodeId(1), NodeId(2), SimTime(t)));
//!     hist.record(Rating::positive(NodeId(2), NodeId(1), SimTime(t)));
//!     if t % 3 == 0 {
//!         hist.record(Rating::negative(NodeId(3 + t % 4), NodeId(1), SimTime(t)));
//!         hist.record(Rating::negative(NodeId(3 + t % 4), NodeId(2), SimTime(t)));
//!     }
//! }
//! let nodes: Vec<NodeId> = (1..=6).map(NodeId).collect();
//! let input = DetectionInput::from_signed_history(&hist, &nodes);
//! let report = OptimizedDetector::new(Thresholds::new(1.0, 20, 0.8, 0.2)).detect(&input);
//! assert_eq!(report.pair_ids(), vec![(NodeId(1), NodeId(2))]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use collusion_core as core;
pub use collusion_dht as dht;
pub use collusion_reputation as reputation;
pub use collusion_sim as sim;
pub use collusion_trace as trace;

/// One prelude across all subsystems.
pub mod prelude {
    pub use collusion_core::prelude::*;
    pub use collusion_dht::prelude::*;
    pub use collusion_reputation::prelude::*;
    pub use collusion_sim::prelude::*;
    pub use collusion_trace::prelude::*;
}
