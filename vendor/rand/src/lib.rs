//! Vendored stand-in for the `rand` crate, exposing exactly the 0.9 API
//! subset this workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::random_range` over integer ranges, and `Rng::random_bool`.
//!
//! The build environment has no registry access, so external crates are
//! vendored as small self-contained implementations (see `vendor/README.md`).
//! `SmallRng` is xoshiro256++ — the same generator family the real crate
//! uses on 64-bit targets — seeded through SplitMix64, so streams are
//! high-quality and fully deterministic for a given seed. Streams are *not*
//! guaranteed bit-identical to the upstream crate; every test in this
//! workspace treats seeds as opaque and asserts invariants or values derived
//! from this generator.

/// A seedable generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random-value convenience methods, mirroring `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// Uses Lemire's widening-multiply method with rejection, so results
    /// are exactly uniform over the span.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Sample a value from the type's standard distribution (for `f64`,
    /// uniform in `[0, 1)`), mirroring `Rng::random`.
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// Always consumes exactly one `next_u64` so call sites stay
    /// stream-stable regardless of `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool({p}) out of [0, 1]");
        let x = self.next_u64();
        if p >= 1.0 {
            return true;
        }
        // 2^64 is a power of two, hence exactly representable in f64; the
        // `as` cast saturates, which is what we want at the edges.
        let threshold = (p * 18_446_744_073_709_551_616.0) as u64;
        x < threshold
    }
}

/// Types with a standard distribution for `Rng::random`, mirroring
/// `rand::distr::StandardUniform`.
pub trait StandardUniform: Sized {
    /// Draw one standard sample.
    fn sample<G: Rng>(rng: &mut G) -> Self;
}

impl StandardUniform for f64 {
    fn sample<G: Rng>(rng: &mut G) -> f64 {
        unit_f64(rng)
    }
}

impl StandardUniform for u64 {
    fn sample<G: Rng>(rng: &mut G) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for bool {
    fn sample<G: Rng>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range a uniform value can be drawn from, mirroring `rand::distr`'s
/// `SampleRange` bound on `Rng::random_range`.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_single<G: Rng>(self, rng: &mut G) -> T;
}

/// Uniform draw from `[lo, hi]` (inclusive) over `u64`, via Lemire's method.
fn sample_inclusive_u64<G: Rng>(rng: &mut G, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full 64-bit range.
        return rng.next_u64();
    }
    // Rejection threshold: 2^64 mod span.
    let zone = span.wrapping_neg() % span;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(span);
        if (m as u64) >= zone {
            return lo.wrapping_add((m >> 64) as u64);
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                sample_inclusive_u64(rng, self.start as u64, (self.end - 1) as u64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: Rng>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                sample_inclusive_u64(rng, lo as u64, hi as u64) as $t
            }
        }
    )+};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: Rng>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let lo = (self.start as i64).wrapping_sub(i64::MIN) as u64;
                let hi = ((self.end - 1) as i64).wrapping_sub(i64::MIN) as u64;
                let v = sample_inclusive_u64(rng, lo, hi);
                (v as i64).wrapping_add(i64::MIN) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: Rng>(self, rng: &mut G) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range in random_range");
                let lo = (a as i64).wrapping_sub(i64::MIN) as u64;
                let hi = (b as i64).wrapping_sub(i64::MIN) as u64;
                let v = sample_inclusive_u64(rng, lo, hi);
                (v as i64).wrapping_add(i64::MIN) as $t
            }
        }
    )+};
}

impl_sample_range_signed!(i32, i64);

/// Uniform f64 in `[0, 1)` from 53 random bits.
fn unit_f64<G: Rng>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<G: Rng>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<G: Rng>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// SplitMix64 step: advances `state` and returns the next output.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64_next, Rng, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// algorithm the real `rand 0.9` uses for `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut key = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64_next(&mut key);
            }
            // SplitMix64 never yields an all-zero 256-bit expansion, so the
            // xoshiro state is always valid.
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams for distinct seeds should differ");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let z: u8 = rng.random_range(1..=5);
            assert!((1..=5).contains(&z));
            let w: i64 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn all_range_values_hit() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a bucket");
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "p=0.25 measured {frac}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn bool_edge_probabilities_consume_stream() {
        // Call sites rely on one draw per call regardless of p.
        let mut a = SmallRng::seed_from_u64(9);
        let mut b = SmallRng::seed_from_u64(9);
        let _ = a.random_bool(0.0);
        let _ = b.random_bool(0.7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
