//! Vendored stand-in for `rayon`, exposing the parallel-iterator API subset
//! this workspace uses (`par_iter`, `par_iter_mut`, `into_par_iter`,
//! `flat_map_iter`, plus the standard adapter chain) executed **sequentially**,
//! alongside a real fork-join core (`scope`, `join`,
//! `current_num_threads`) backed by `std::thread::scope`.
//!
//! The build environment has no registry access, so external crates are
//! vendored (see `vendor/README.md`). Running the "parallel" iterator paths
//! on one thread keeps every `detect_par`-style kernel compilable and —
//! crucially — bit-identical to its sequential twin, which the equivalence
//! tests assert. The adapters return plain `std::iter` types, so
//! `map`/`filter_map`/`enumerate`/`sum`/`collect` all come from
//! `std::iter::Iterator`.
//!
//! The fork-join core is what the parallel epoch close builds on: callers
//! split work into contiguous chunks, spawn one scoped thread per chunk,
//! and reassemble results in chunk order, so output never depends on the
//! thread count. `current_num_threads` honours `RAYON_NUM_THREADS` exactly
//! like the real crate (0 or unset → available parallelism).

/// Scoped thread spawning; `std::thread::scope` re-exported under the name
/// the real crate uses. Workers spawned inside the scope may borrow from
/// the enclosing stack frame and are joined before `scope` returns.
pub use std::thread::scope;
/// Handle type produced by [`scope`] spawns.
pub use std::thread::Scope;

/// Number of worker threads fork-join helpers should use: the
/// `RAYON_NUM_THREADS` environment override when set to a positive
/// integer, else the machine's available parallelism. Cached after the
/// first call, mirroring the real crate's pool-at-first-use behaviour.
#[must_use]
pub fn current_num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1),
        }
    })
}

/// Run both closures, potentially in parallel, returning both results.
/// With one configured thread the pair runs sequentially in order, which
/// doubles as the deterministic oracle for the forked path.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(oper_b);
            let ra = oper_a();
            (ra, hb.join().expect("rayon::join worker panicked"))
        })
    }
}

/// Consuming conversion, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type of the iterator.
    type Item;
    /// Concrete iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert `self` into a (sequentially executed) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// Element type of the iterator (usually a reference).
    type Item: 'a;
    /// Concrete iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate `&self` "in parallel" (sequentially here).
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type Item = <&'a T as IntoIterator>::Item;
    type Iter = <&'a T as IntoIterator>::IntoIter;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutable borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'a> {
    /// Element type of the iterator (usually a mutable reference).
    type Item: 'a;
    /// Concrete iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate `&mut self` "in parallel" (sequentially here).
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
{
    type Item = <&'a mut T as IntoIterator>::Item;
    type Iter = <&'a mut T as IntoIterator>::IntoIter;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Rayon-specific adapters that are not plain `Iterator` methods.
///
/// Blanket-implemented for every iterator so `use rayon::prelude::*`
/// brings them into scope exactly like the real crate's
/// `ParallelIterator` trait does.
pub trait ParallelIterator: Iterator + Sized {
    /// Sequential equivalent of rayon's `flat_map_iter`.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }

    /// Splitting hint; a no-op without a thread pool.
    fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> ParallelIterator for I {}

/// Everything call sites need, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().for_each(|x| *x += 10);
        assert_eq!(v, vec![11, 12, 13]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let v = vec![1, 3];
        let out: Vec<i32> = v.par_iter().flat_map_iter(|&x| vec![x, x + 1]).collect();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn enumerate_chain_compiles() {
        let v = vec!["a", "b"];
        let out: Vec<(usize, &str)> = v.par_iter().enumerate().map(|(i, s)| (i, *s)).collect();
        assert_eq!(out, vec![(0, "a"), (1, "b")]);
    }
}
