//! Vendored stand-in for `serde` (see `vendor/README.md` for why external
//! crates are vendored).
//!
//! Exposes the two trait names and the derive macros so `use serde::{…}` and
//! `#[derive(Serialize, Deserialize)]` (with `#[serde(...)]` attributes)
//! compile unchanged. The traits are markers: nothing in the workspace
//! serializes through serde yet — the benches hand-roll their JSON on
//! purpose — so no data-format machinery is needed. Swapping back to the
//! upstream crates is a two-line change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (same name, trait namespace).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (same name, trait namespace).
pub trait Deserialize<'de>: Sized {}
