//! Vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and model
//! types to keep them wire-ready, but nothing in-tree serializes yet (there
//! is deliberately no JSON dependency; benches hand-roll their JSON). These
//! derive macros therefore only need to *accept* the derive position and the
//! `#[serde(...)]` helper attributes; they expand to nothing. When a real
//! serializer lands, swap `vendor/serde*` back to the upstream crates — no
//! call-site changes needed.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes; expands to
/// nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes; expands
/// to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
