//! Vendored stand-in for `criterion` (see `vendor/README.md`).
//!
//! Provides the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — backed
//! by a simple median-of-samples wall-clock harness.
//!
//! Mode selection follows cargo's conventions:
//! - `cargo bench` passes `--bench`, which enables full measurement
//!   (timed warm-up, then `sample_size` timed samples; median reported).
//! - `cargo test` runs harness-less bench targets with no `--bench` flag;
//!   each benchmark then executes its body exactly once as a smoke test, so
//!   the tier-1 suite stays fast while still compiling and exercising every
//!   bench.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Function name + parameter value, rendered as `name/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only id.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Timing loop handle passed to bench closures, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by `iter`.
    median_ns: f64,
    samples: usize,
    full: bool,
}

impl Bencher {
    /// Time `routine`, storing the median over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.full {
            black_box(routine());
            self.median_ns = f64::NAN;
            return;
        }
        // Warm up for ~50ms, deriving how many calls fit a ~10ms sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((10_000_000.0 / per_iter.max(1.0)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
    }
}

/// Shared measurement settings and reporting.
#[derive(Clone, Debug)]
pub struct Criterion {
    full: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` hands harness-less targets `--bench`; anything else
        // (notably `cargo test`) gets one-shot smoke mode.
        let full = std::env::args().any(|a| a == "--bench");
        Criterion { full, sample_size: 20 }
    }
}

impl Criterion {
    /// Run one benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.full, self.sample_size, id, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let (full, sample_size) = (self.full, self.sample_size);
        BenchmarkGroup { _parent: self, name: name.to_string(), full, sample_size }
    }
}

/// Group of benchmarks sharing a name prefix and settings, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    full: bool,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark identified by `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.full, self.sample_size, &label, f);
        self
    }

    /// Run a benchmark that borrows a setup value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id);
        run_one(self.full, self.sample_size, &label, |b| f(b, input));
        self
    }

    /// Finish the group (reporting is per-benchmark; nothing buffered).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(full: bool, samples: usize, label: &str, mut f: F) {
    let mut b = Bencher { median_ns: f64::NAN, samples, full };
    f(&mut b);
    if full {
        println!("{label:<50} {:>14.1} ns/iter (median)", b.median_ns);
    } else {
        println!("{label:<50} smoke ok");
    }
}

/// Collect benchmark functions into one runnable set, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut count = 0;
        run_one(false, 20, "unit/smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { full: false, sample_size: 20 };
        let mut g = c.benchmark_group("unit");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lookup", 128).to_string(), "lookup/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
