//! Vendored stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the strategy/runner subset this workspace's property tests
//! use: integer and float range strategies, tuples (arity 2–8), `prop_map`,
//! `Just`, `prop_oneof!` (plain and weighted), `prop::collection::{vec,
//! btree_set}`, `prop::option::of`, `prop::sample::{select, Index}`,
//! `prop::bool::ANY`, `any::<T>()` (integers, floats, bool, byte arrays),
//! and the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, chosen deliberately for an offline CI:
//! - **Deterministic**: cases are generated from a seed derived from the
//!   test's module path and name, so every run explores the same inputs and
//!   failures reproduce without a persistence file.
//! - **No shrinking**: a failing case panics with the sampled arguments in
//!   scope; inputs here are small enough to debug unshrunk.
//! - Default case count is 64 (override per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, or globally with
//!   the `PROPTEST_CASES` environment variable).

/// Deterministic generator used by the runner (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound == 0` means the full 64-bit range).
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let zone = bound.wrapping_neg() % bound;
        loop {
            let m = u128::from(self.next_u64()) * u128::from(bound);
            if (m as u64) >= zone {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds. `const` so the
/// `proptest!` expansion can hash `module_path!()` at compile time.
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map sampled values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// `Just(value)` — the strategy that always yields clones of `value`,
/// mirroring `proptest::strategy::Just`.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One [`prop_oneof!`] option: a weight paired with a boxed sampler.
pub type UnionOption<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

/// Weighted choice over heterogeneous strategies sharing one value type —
/// the shim behind [`prop_oneof!`], mirroring upstream's `TupleUnion`.
/// Built from boxed samplers because the options usually have different
/// concrete strategy types.
pub struct Union<T> {
    options: Vec<UnionOption<T>>,
}

impl<T> Union<T> {
    /// Union over `(weight, sampler)` options; weights must not all be 0.
    pub fn new(options: Vec<UnionOption<T>>) -> Self {
        let total: u64 = options.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { options }
    }
}

/// Box one [`prop_oneof!`] option. A generic fn (not an `as Box<dyn …>`
/// cast in the macro body) so the option value types unify through the
/// returned tuple instead of leaving an inference hole that would fall
/// back to `i32`.
pub fn union_option<S: Strategy + 'static>(weight: u32, strat: S) -> UnionOption<S::Value> {
    (weight, Box::new(move |rng: &mut TestRng| strat.sample(rng)))
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rng.below(total);
        for (w, sampler) in &self.options {
            if pick < u64::from(*w) {
                return sampler(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weighted pick below the total weight")
    }
}

/// Choose among strategies, mirroring `proptest::prop_oneof!`:
/// `prop_oneof![a, b, c]` picks uniformly, `prop_oneof![3 => a, 1 => b]`
/// picks by weight. All options must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::union_option($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )+};
}

impl_range_strategy_sint!(i8, i16, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Map [0,1) onto [lo,hi]; hitting the exact endpoint is fine but not
        // required by any property here.
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Namespaced strategy constructors, mirroring the `proptest::prop` facade.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeSet;

        /// Strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>` with cardinality drawn from
        /// `size` (reached by redrawing on duplicates, like upstream).
        #[derive(Clone, Debug)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// `prop::collection::btree_set(element, len_range)`.
        pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let target = self.size.clone().sample(rng);
                let mut set = BTreeSet::new();
                // Bounded redraws: tiny element domains may not be able to
                // reach `target` distinct values.
                let mut attempts = 0usize;
                while set.len() < target && attempts < 100 + target * 100 {
                    set.insert(self.element.sample(rng));
                    attempts += 1;
                }
                set
            }
        }
    }

    /// Optional-value strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy type of [`of`].
        #[derive(Clone, Debug)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `prop::option::of(strategy)` — `None` and `Some` drawn with
        /// equal probability (upstream's default weighting).
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.inner.sample(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Strategies sampling from existing collections, mirroring
    /// `proptest::sample`.
    pub mod sample {
        use crate::{Arbitrary, Strategy, TestRng};

        /// Strategy type of [`select`].
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `prop::sample::select(options)` — uniform choice of one element.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.options.len() as u64) as usize;
                self.options[i].clone()
            }
        }

        /// A length-agnostic index, mirroring `proptest::sample::Index`:
        /// draw one with `any::<Index>()`, then project it onto any
        /// collection with [`Index::index`].
        #[derive(Clone, Copy, Debug)]
        pub struct Index(u64);

        impl Index {
            /// The index this value denotes in a collection of `len`
            /// elements (uniform over `0..len`; `len` must be nonzero).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Index {
                Index(rng.next_u64())
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy type of [`ANY`].
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }

        /// `prop::bool::ANY` — uniform over `{true, false}`.
        pub const ANY: BoolAny = BoolAny;
    }
}

/// Define property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))] // optional
///     #[test]
///     fn prop_name(x in 0u64..10, v in prop::collection::vec(0u32..5, 0..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            const __SEED: u64 =
                $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..u64::from(__config.cases) {
                let mut __rng =
                    $crate::TestRng::new(__SEED ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // The closure gives `prop_assume!` an early-exit `return`
                // that skips just this case.
                let mut __run = || {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                };
                __run();
            }
        }
    )*};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Everything call sites need, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 1u8..=3, f in 0.0f64..=1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_map(v in (0u64..4, 0u64..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(v <= 6);
        }

        #[test]
        fn options_selects_and_indexes_stay_in_domain(
            opt in prop::option::of(3u64..6),
            pick in prop::sample::select(vec!['a', 'b', 'c']),
            idx in any::<prop::sample::Index>(),
            bytes in any::<[u8; 4]>(),
        ) {
            if let Some(v) = opt {
                prop_assert!((3..6).contains(&v));
            }
            prop_assert!(['a', 'b', 'c'].contains(&pick));
            prop_assert!(idx.index(7) < 7);
            let _ = bytes;
        }

        #[test]
        fn collections_respect_sizes(
            xs in prop::collection::vec(0u32..100, 0..10),
            set in prop::collection::btree_set(0u64..10_000, 2..8),
            flag in prop::bool::ANY,
            raw in any::<u64>(),
        ) {
            prop_assert!(xs.len() < 10);
            prop_assert!(set.len() < 8 && set.len() >= 2);
            prop_assume!(flag || raw.count_ones() <= 64);
            let _ = raw;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(_x in 0u64..2) {
            // Body runs; the case count itself is exercised below.
        }
    }

    proptest! {
        #[test]
        fn just_and_oneof_stay_in_domain(
            x in Just(41u64),
            y in prop_oneof![Just(1u64), 10..20u64, Just(u64::MAX)],
            z in prop_oneof![5 => 0..10u64, 1 => 100..110u64],
        ) {
            prop_assert_eq!(x, 41);
            prop_assert!(y == 1 || (10..20).contains(&y) || y == u64::MAX);
            prop_assert!((0..10).contains(&z) || (100..110).contains(&z));
        }
    }

    #[test]
    fn oneof_weights_bias_the_draw() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::TestRng::new(7);
        let hits = (0..1000).filter(|_| strat.sample(&mut rng)).count();
        assert!(hits > 800, "9:1 weighting drew true only {hits}/1000 times");
    }

    #[test]
    fn determinism_same_seed_same_samples() {
        let strat = (0u64..1000, 0u64..1000);
        let mut a = crate::TestRng::new(99);
        let mut b = crate::TestRng::new(99);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }
}
