#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# Offline-safe — never touches the network (run `cargo fetch` once if the
# local registry cache is cold).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (dht/core non-test code: no unwrap) =="
# hot paths that must heal around faults instead of panicking
cargo clippy -p collusion-dht -p collusion-core -- -D warnings -W clippy::unwrap_used

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== parallel-close identity matrix (RAYON_NUM_THREADS ∈ {1, 4}) =="
# close_threads=0 resolves through RAYON_NUM_THREADS, so this forces the
# auto path through both the serial oracle and a genuinely forked width;
# the properties assert bit-identical reports, state and persisted images
for w in 1 4; do
  RAYON_NUM_THREADS="$w" cargo test --release -q \
    --test pipeline_props --test scale_props
done

echo "== explicit-simd build matrix (fixed-lane band kernels, both paths bit-identical) =="
# compile + lint the pinned-vector-shape kernel path, then run the kernel
# oracle and pipeline bit-identity properties under it
cargo clippy -p collusion-core --features explicit-simd --all-targets -- -D warnings
cargo test --release -q --features explicit-simd --test pipeline_props

echo "== fault matrix (drop ∈ {0, 0.1, 0.3}) =="
cargo test --release --test fault_tolerance -q

echo "== crash matrix (every kill-point, fixed seed, bit-identical recovery) =="
cargo test --release -q -p collusion-sim crash -- --nocapture

echo "== scale smoke (n=2k sharded/pruned/epoch kernels, fixed shape) =="
# the smoke run asserts bit-identical suspect sets across all kernel
# variants internally; the diff pins the deterministic counters
smoke_out="$(mktemp)"
recovery_out="$(mktemp)"
ingest_out="$(mktemp)"
net_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$recovery_out" "$ingest_out" "$net_out"' EXIT
timeout 120 cargo run --release -q -p collusion-bench --bin scale_json -- \
  --smoke --out "$smoke_out"
diff scripts/BENCH_scale_smoke_expected.json "$smoke_out"

echo "== recovery smoke (n=2k WAL/checkpoint cadences, fixed replay volumes) =="
# every cadence asserts the recovered engine equals the crashed image
# byte for byte; the diff pins replay/skip counts per checkpoint cadence
timeout 120 cargo run --release -q -p collusion-bench --bin recovery_json -- \
  --smoke --out "$recovery_out"
diff scripts/BENCH_recovery_smoke_expected.json "$recovery_out"

echo "== ingest smoke (n=2k pipelined vs serial, fixed suspect/record counts) =="
# the smoke run asserts per-epoch suspect sets and final engine state are
# bit-identical between the pipelined and serial engines internally; the
# diff pins suspect counts, WAL record counts, and the identity flags —
# including the per-width "identical" flags of the close_threads sweep.
# ratings_per_sec, allocs_steady_close and the sweep's close_median_ns
# are machine-dependent, so they are stripped from the byte diff and
# gated separately below.
timeout 120 cargo run --release -q -p collusion-bench --bin ingest_json -- \
  --smoke --out "$ingest_out"
normalize_ingest() {
  grep -vE 'ratings_per_sec|allocs_steady_close' "$1" \
    | sed -E 's/, "close_median_ns": [0-9]+//'
}
diff <(normalize_ingest scripts/BENCH_ingest_smoke_expected.json) \
     <(normalize_ingest "$ingest_out")

echo "== ingest alloc budget (steady-state close stays allocation-light) =="
# the serial engine's last (steady-state) close at n=2k: the reused
# detection scratch holds this near ~270 allocations; the pre-scratch
# code cost thousands. Budget leaves ~3x headroom, far under the old cost.
steady="$(grep -o '"allocs_steady_close": [0-9]*' "$ingest_out" | grep -o '[0-9]*$')"
if [ "$steady" -gt 1000 ]; then
  echo "steady-state close allocated $steady times (budget 1000)" >&2
  exit 1
fi

echo "== parallel-close overhead smoke (forked close vs serial oracle, loose floor) =="
# the smoke sweep closes the same stream at close_threads 1 and 4; on a
# many-core box the forked close is faster, on a 1-core box it pays pure
# fork-join overhead. The floor only catches a pathological parallel
# path (>5x slower than serial) without flaking on either topology.
w1="$(grep -o '"threads": 1, "identical": true, "close_median_ns": [0-9]*' "$ingest_out" | grep -o '[0-9]*$')"
w4="$(grep -o '"threads": 4, "identical": true, "close_median_ns": [0-9]*' "$ingest_out" | grep -o '[0-9]*$')"
awk -v w1="$w1" -v w4="$w4" 'BEGIN {
  if (w1 == "" || w4 == "") {
    print "close_threads sweep missing from smoke output (or a width was not identical)"
    exit 1
  }
  speedup = w1 / w4
  if (speedup < 0.2) {
    printf "forked close (width 4) ran at %.2fx the serial oracle (floor 0.2)\n", speedup
    exit 1
  }
}'

echo "== ingest perf smoke (serial throughput, 10x tolerance vs recorded reference) =="
# generous ratio gate: catches order-of-magnitude ingest regressions
# without flaking on machine noise (this box stalls up to ~2x)
ref="$(grep -o '"ratings_per_sec": [0-9.]*' scripts/BENCH_ingest_smoke_expected.json | head -1 | grep -o '[0-9.]*$')"
got="$(grep -o '"ratings_per_sec": [0-9.]*' "$ingest_out" | head -1 | grep -o '[0-9.]*$')"
awk -v ref="$ref" -v got="$got" 'BEGIN {
  if (got * 10 < ref) {
    printf "ingest smoke throughput %s/s is >10x below the recorded reference %s/s\n", got, ref
    exit 1
  }
}'

echo "== wire-ingest smoke (streamed inserts over TCP, durable acks, fixed frame counts) =="
# real localhost cluster, streamed ingest at three (connections, batch,
# window) points; the binary itself asserts suspect-set equality with the
# in-process baseline and full durable acking at every point. The diff
# pins the deterministic projection of the grid (rating/ack/frame counts);
# bytes and rates are wall-clock- or timing-dependent and stay unpinned.
timeout 180 cargo run --release -q -p collusion-bench --bin net_json -- \
  --smoke "$net_out"
diff scripts/BENCH_net_wire_smoke_expected.txt \
     <(grep -o '"connections": [0-9]*, "batch": [0-9]*, "window": [0-9]*, "ratings": [0-9]*, "acked": [0-9]*, "frames_sent": [0-9]*' "$net_out")

echo "== wire-ingest perf smoke (streamed path vs paired in-process serial, loose floor) =="
# wire_over_inprocess is the best paired wire/serial ratio of the smoke
# grid. Full runs gate it at 0.5; the smoke floor is looser (0.1) because
# the smoke workload is ~3x smaller and one slow fsync dominates it.
ratio="$(grep -o '"wire_over_inprocess": [0-9.]*' "$net_out" | grep -o '[0-9.]*$')"
awk -v ratio="$ratio" 'BEGIN {
  if (ratio < 0.1) {
    printf "smoke wire ingest fell to %sx of paired in-process serial (floor 0.1)\n", ratio
    exit 1
  }
}'

echo "== cluster smoke (3 managers over TCP: drop point + kill/rejoin, baseline equality) =="
# spawns real localhost manager processes behind fault proxies; the gate
# test asserts the merged suspect sets equal the in-process baseline and
# that a killed manager rejoins from its WAL with the same verdicts
timeout 180 cargo test --release -q -p collusion-sim --test net_cluster cluster_smoke_gate

echo "== nemesis smoke (crash + partition + overload against live resumable streams) =="
# composed fault schedules against a 3-manager cluster ingesting through
# resumable exactly-once stream sessions: detector-gated kills, an
# ack-direction partition, and a shrunk intake watermark. The test itself
# asserts zero acked-rating loss, zero duplicates, and suspect-set
# equality with the in-process baseline; the diff pins the deterministic
# projection (counts and invariant flags — rates stay unpinned).
nemesis_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$recovery_out" "$ingest_out" "$net_out" "$nemesis_out"' EXIT
timeout 240 cargo test --release -q -p collusion-sim --test net_cluster nemesis_smoke_gate \
  -- --nocapture > "$nemesis_out"
diff scripts/BENCH_nemesis_smoke_expected.txt <(grep '^NEMESIS ' "$nemesis_out")

echo "All checks passed."
