#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# Offline-safe — never touches the network (run `cargo fetch` once if the
# local registry cache is cold).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy (dht/core non-test code: no unwrap) =="
# hot paths that must heal around faults instead of panicking
cargo clippy -p collusion-dht -p collusion-core -- -D warnings -W clippy::unwrap_used

echo "== cargo test (workspace) =="
cargo test --workspace -q

echo "== fault matrix (drop ∈ {0, 0.1, 0.3}) =="
cargo test --release --test fault_tolerance -q

echo "== crash matrix (every kill-point, fixed seed, bit-identical recovery) =="
cargo test --release -q -p collusion-sim crash -- --nocapture

echo "== scale smoke (n=2k sharded/pruned/epoch kernels, fixed shape) =="
# the smoke run asserts bit-identical suspect sets across all kernel
# variants internally; the diff pins the deterministic counters
smoke_out="$(mktemp)"
recovery_out="$(mktemp)"
ingest_out="$(mktemp)"
trap 'rm -f "$smoke_out" "$recovery_out" "$ingest_out"' EXIT
timeout 120 cargo run --release -q -p collusion-bench --bin scale_json -- \
  --smoke --out "$smoke_out"
diff scripts/BENCH_scale_smoke_expected.json "$smoke_out"

echo "== recovery smoke (n=2k WAL/checkpoint cadences, fixed replay volumes) =="
# every cadence asserts the recovered engine equals the crashed image
# byte for byte; the diff pins replay/skip counts per checkpoint cadence
timeout 120 cargo run --release -q -p collusion-bench --bin recovery_json -- \
  --smoke --out "$recovery_out"
diff scripts/BENCH_recovery_smoke_expected.json "$recovery_out"

echo "== ingest smoke (n=2k pipelined vs serial, fixed suspect/record counts) =="
# the smoke run asserts per-epoch suspect sets and final engine state are
# bit-identical between the pipelined and serial engines internally; the
# diff pins suspect counts, WAL record counts, and the identity flags
timeout 120 cargo run --release -q -p collusion-bench --bin ingest_json -- \
  --smoke --out "$ingest_out"
diff scripts/BENCH_ingest_smoke_expected.json "$ingest_out"

echo "All checks passed."
